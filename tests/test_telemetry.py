"""Tests for the observability layer (``repro.service.telemetry``):
span tracing — including propagation across the worker-process
boundary — the metrics registry, the exporters, and the instrumentation
threaded through the serving stack.

The headline acceptance test (:class:`TestCrossProcessTrace`) serves
the 112-pair FatTree k=4 all-pairs batch on a 2-worker process pool and
checks that the exported trace is ONE tree — worker-side solver spans,
produced in processes with pids different from the parent's, nest under
the correct lease/shard/request spans.  The chaos-marked variant does
the same while a worker is SIGKILLed mid-batch.
"""

from __future__ import annotations

import asyncio
import json
import os
import signal
import threading
import time

import pytest

from repro.network.model import build_model
from repro.routing import ecmp_policy
from repro.service import (
    AnalysisSession,
    MetricsRegistry,
    Query,
    QueryServer,
    SpanContext,
    StreamClient,
    Telemetry,
    Tracer,
    span_tree,
)
from repro.service.pool import HEALTHY
from repro.service.results import ShardReport
from repro.service.telemetry import NOOP_SPAN
from repro.topology import edge_switches, fat_tree
from repro.utils.timing import Stopwatch


def ecmp_model(topo, dest: int):
    return build_model(topo, routing=ecmp_policy(topo, dest), dest=dest)


@pytest.fixture(scope="module")
def topo():
    return fat_tree(4)


@pytest.fixture(scope="module")
def all_models(topo):
    """One model per edge destination: the full FatTree k=4 query space."""
    return {dest: ecmp_model(topo, dest) for dest in edge_switches(topo)}


@pytest.fixture(scope="module")
def all_pairs(all_models):
    """The 112-pair all-pairs delivery batch of the acceptance criterion."""
    batch = [
        Query.delivery(packet, dest)
        for dest, model in all_models.items()
        for packet in model.ingress_packets
    ]
    assert len(batch) == 112
    return batch


@pytest.fixture(scope="module")
def two_models(all_models):
    """A cheap two-destination slice for the lighter-weight tests."""
    dests = list(all_models)[:2]
    return {dest: all_models[dest] for dest in dests}


def by_span_id(records):
    return {record["span"]: record for record in records}


def depth_of(record, by_id):
    """Ancestor count of ``record`` within the exported tree."""
    depth = 0
    current = record
    while current["parent"] is not None and current["parent"] in by_id:
        current = by_id[current["parent"]]
        depth += 1
    return depth


def ancestors(record, by_id):
    chain = []
    current = record
    while current["parent"] is not None and current["parent"] in by_id:
        current = by_id[current["parent"]]
        chain.append(current)
    return chain


def assert_single_tree(records):
    """Every record shares one trace id and parents resolve to one root."""
    assert records, "no spans were recorded"
    traces = {record["trace"] for record in records}
    assert len(traces) == 1, f"expected one trace, got {len(traces)}"
    by_id = by_span_id(records)
    roots = [r for r in records if r["parent"] is None or r["parent"] not in by_id]
    assert len(roots) == 1, f"expected one root, got {[r['name'] for r in roots]}"
    return roots[0], by_id


# ---------------------------------------------------------------------------
# Span mechanics
# ---------------------------------------------------------------------------
class TestSpans:
    def test_nesting_follows_the_context_var(self):
        tracer = Tracer(enabled=True)
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                assert inner.trace_id == outer.trace_id
                assert inner.parent_id == outer.span_id
        records = tracer.spans()
        assert [r["name"] for r in records] == ["inner", "outer"]
        assert records[0]["parent"] == records[1]["span"]
        assert records[1]["parent"] is None

    def test_explicit_parent_beats_the_current_span(self):
        tracer = Tracer(enabled=True)
        remote = SpanContext(trace_id=7, span_id=13)
        with tracer.span("ambient"):
            with tracer.span("child", parent=remote) as child:
                assert child.trace_id == 7
                assert child.parent_id == 13

    def test_wire_tuple_parent(self):
        tracer = Tracer(enabled=True)
        with tracer.span("child", parent=(21, 42, True)) as child:
            assert child.trace_id == 21
            assert child.parent_id == 42
        (record,) = tracer.spans()
        assert record["trace"] == 21 and record["parent"] == 42

    def test_attrs_events_and_timestamps(self):
        tracer = Tracer(enabled=True)
        before = time.time()
        with tracer.span("op", color="red") as span:
            span.set(size=3)
            span.event("milestone", step=1)
        after = time.time()
        (record,) = tracer.spans()
        assert record["attrs"] == {"color": "red", "size": 3}
        [(name, when, attrs)] = record["events"]
        assert name == "milestone" and attrs == {"step": 1}
        assert before <= record["start"] <= when <= record["end"] <= after
        assert record["pid"] == os.getpid()

    def test_exception_is_recorded_and_context_restored(self):
        tracer = Tracer(enabled=True)
        with pytest.raises(RuntimeError):
            with tracer.span("boom"):
                raise RuntimeError("solver exploded")
        (record,) = tracer.spans()
        assert record["attrs"]["error"] == "RuntimeError: solver exploded"
        assert tracer.current_context() is None

    def test_tracer_event_lands_on_the_current_span(self):
        tracer = Tracer(enabled=True)
        with tracer.span("op"):
            tracer.event("retry", attempt=2)
        (record,) = tracer.spans()
        assert record["events"][0][0] == "retry"

    def test_buffer_bound_counts_drops(self):
        tracer = Tracer(enabled=True, max_spans=2)
        for _ in range(3):
            with tracer.span("r"):
                pass
        assert len(tracer) == 2
        assert tracer.dropped == 1

    def test_take_drains_and_ingest_readopts(self):
        worker = Tracer(enabled=True)
        with worker.span("worker:query", parent=(5, 9, True)):
            pass
        shipped = worker.take()
        assert len(worker) == 0
        parent = Tracer(enabled=True)
        parent.ingest(shipped)
        (record,) = parent.spans()
        assert record["trace"] == 5 and record["parent"] == 9


class TestDisabledPath:
    def test_disabled_tracer_hands_out_the_noop_singleton(self):
        tracer = Tracer()
        span = tracer.span("anything", parent=(1, 2))
        assert span is NOOP_SPAN
        assert tracer.span("more") is NOOP_SPAN  # identity: no allocation
        with span as inner:
            assert inner.set(a=1).event("x") is inner
        assert len(tracer) == 0
        assert tracer.current_context() is None
        tracer.record_span("phase", 0.0, 1.0)
        tracer.event("ignored")
        tracer.ingest([{"type": "span"}])
        assert len(tracer) == 0

    def test_disabled_session_serves_without_spans(self, two_models):
        batch = [
            Query.delivery(packet, dest)
            for dest, model in two_models.items()
            for packet in model.ingress_packets
        ][:6]
        with AnalysisSession(models=two_models.values()) as session:
            result = session.query_batch(batch)
            assert len(result) == len(batch)
            summary = session.stats()["telemetry"]
            assert summary["tracing"] is False
            assert summary["spans"] == 0


class TestSampling:
    def test_deterministic_one_in_n_roots(self):
        tracer = Tracer(enabled=True, sample=0.5)
        decisions = []
        for _ in range(6):
            with tracer.span("root") as span:
                decisions.append(span.recording)
        assert decisions == [True, False, True, False, True, False]
        assert len(tracer) == 3

    def test_unsampled_root_still_flows_context(self):
        tracer = Tracer(enabled=True, sample=0.5)
        with tracer.span("sampled"):
            pass
        with tracer.span("unsampled") as root:
            assert root.recording is False
            assert root is not NOOP_SPAN  # real span: context still flows
            with tracer.span("child") as child:
                assert child.recording is False
                assert child.trace_id == root.trace_id
            tracer.record_span("phase", 0.0, 1.0)  # dropped: unsampled parent
        assert [r["name"] for r in tracer.spans()] == ["sampled"]

    def test_sample_validation(self):
        with pytest.raises(ValueError, match="sample"):
            Tracer(enabled=True, sample=0.0)
        with pytest.raises(ValueError, match="sample"):
            Tracer(enabled=True, sample=1.5)
        with pytest.raises(ValueError, match="max_spans"):
            Tracer(enabled=True, max_spans=0)

    def test_record_span_without_any_parent_is_dropped(self):
        tracer = Tracer(enabled=True)
        tracer.record_span("phase:solve", 0.0, 1.0)
        assert len(tracer) == 0  # orphan phases outside a trace stay out


# ---------------------------------------------------------------------------
# Exporters
# ---------------------------------------------------------------------------
class TestExporters:
    def _traced(self):
        tracer = Tracer(enabled=True)
        with tracer.span("request", queries=2) as req:
            req.event("admitted", kind="delivery")
            with tracer.span("shard"):
                pass
        return tracer

    def test_chrome_trace_shape(self):
        tracer = self._traced()
        trace = tracer.chrome_trace()
        events = trace["traceEvents"]
        complete = [e for e in events if e["ph"] == "X"]
        instants = [e for e in events if e["ph"] == "i"]
        assert {e["name"] for e in complete} == {"request", "shard"}
        assert [e["name"] for e in instants] == ["admitted"]
        for event in complete:
            assert event["dur"] >= 0.0
            assert event["ts"] > 1e15  # epoch µs: parent/worker rows align
            int(event["args"]["span"], 16)
        (request,) = [e for e in complete if e["name"] == "request"]
        assert request["args"]["queries"] == 2
        assert request["args"]["parent"] is None

    def test_export_chrome_and_jsonl_files(self, tmp_path):
        tracer = self._traced()
        chrome = tmp_path / "trace.json"
        jsonl = tmp_path / "trace.jsonl"
        assert tracer.export_chrome(str(chrome)) == 3  # 2 spans + 1 instant
        assert tracer.export_jsonl(str(jsonl)) == 2
        payload = json.loads(chrome.read_text())
        assert len(payload["traceEvents"]) == 3
        lines = [json.loads(line) for line in jsonl.read_text().splitlines()]
        assert {line["name"] for line in lines} == {"request", "shard"}

    def test_span_tree_groups_by_parent(self):
        tracer = self._traced()
        records = tracer.spans()
        tree = span_tree(records)
        (root,) = tree[None]
        assert root["name"] == "request"
        assert [r["name"] for r in tree[root["span"]]] == ["shard"]


# ---------------------------------------------------------------------------
# Metrics registry
# ---------------------------------------------------------------------------
class TestMetricsRegistry:
    def test_counter_and_gauge_exposition(self):
        registry = MetricsRegistry()
        served = registry.counter("repro_served_total", "Queries served")
        served.inc()
        served.inc(4)
        depth = registry.gauge("repro_depth", "Queue depth")
        depth.set(7)
        depth.dec(2)
        text = registry.to_prometheus()
        assert "# HELP repro_served_total Queries served" in text
        assert "# TYPE repro_served_total counter" in text
        assert "repro_served_total 5" in text
        assert "repro_depth 5" in text
        assert text.endswith("\n")

    def test_labelled_series(self):
        registry = MetricsRegistry()
        failures = registry.counter("repro_failures", "", labelnames=("kind",))
        failures.labels(kind="crash").inc()
        failures.labels(kind="crash").inc()
        failures.labels(kind="timeout").inc()
        text = registry.to_prometheus()
        assert 'repro_failures{kind="crash"} 2' in text
        assert 'repro_failures{kind="timeout"} 1' in text
        with pytest.raises(ValueError, match="takes labels"):
            failures.labels(mode="crash")
        with pytest.raises(ValueError, match="needs labels"):
            failures.inc()

    def test_histogram_cumulative_buckets(self):
        registry = MetricsRegistry()
        latency = registry.histogram(
            "repro_latency_seconds", "Latency", buckets=(0.1, 1.0, 10.0)
        )
        for value in (0.05, 0.5, 0.5, 5.0, 50.0):
            latency.observe(value)
        text = registry.to_prometheus()
        assert 'repro_latency_seconds_bucket{le="0.1"} 1' in text
        assert 'repro_latency_seconds_bucket{le="1"} 3' in text
        assert 'repro_latency_seconds_bucket{le="10"} 4' in text
        assert 'repro_latency_seconds_bucket{le="+Inf"} 5' in text
        assert "repro_latency_seconds_count 5" in text
        assert "repro_latency_seconds_sum 56.05" in text

    def test_boundary_lands_in_its_bucket(self):
        registry = MetricsRegistry()
        h = registry.histogram("repro_h", "", buckets=(1.0, 2.0))
        h.observe(1.0)  # le="1" is inclusive, Prometheus-style
        assert 'repro_h_bucket{le="1"} 1' in registry.to_prometheus()

    def test_idempotent_registration_and_kind_mismatch(self):
        registry = MetricsRegistry()
        first = registry.counter("repro_thing", "help")
        again = registry.counter("repro_thing")
        assert first is again
        with pytest.raises(ValueError, match="already registered"):
            registry.gauge("repro_thing")


# ---------------------------------------------------------------------------
# Stopwatch listener → phase spans
# ---------------------------------------------------------------------------
class TestPhaseListener:
    def test_stopwatch_invokes_listener(self):
        calls: list[tuple[str, float]] = []
        watch = Stopwatch(listener=lambda name, elapsed: calls.append((name, elapsed)))
        with watch.measure("solve"):
            pass
        with watch.measure("solve"):
            pass
        assert [name for name, _ in calls] == ["solve", "solve"]
        assert all(elapsed >= 0.0 for _, elapsed in calls)
        assert watch.sections["solve"] >= 0.0

    def test_phase_listener_parents_under_the_current_span(self):
        tracer = Tracer(enabled=True)
        listen = tracer.phase_listener()
        with tracer.span("lease") as lease:
            listen("factorize", 0.25)
        phase, outer = tracer.spans()
        assert phase["name"] == "phase:factorize"
        assert phase["parent"] == lease.span_id
        assert phase["end"] - phase["start"] == pytest.approx(0.25, abs=0.01)
        assert outer["name"] == "lease"


# ---------------------------------------------------------------------------
# Telemetry bundle
# ---------------------------------------------------------------------------
class TestTelemetryBundle:
    def test_coerce(self):
        default = Telemetry.coerce(None)
        assert default.tracing is False
        assert Telemetry.coerce(False).tracing is False
        assert Telemetry.coerce(True).tracing is True
        bundle = Telemetry(tracing=True, sample=0.5)
        assert Telemetry.coerce(bundle) is bundle
        with pytest.raises(TypeError):
            Telemetry.coerce("on")

    def test_summary(self):
        bundle = Telemetry(tracing=True)
        with bundle.tracer.span("x"):
            pass
        assert bundle.summary() == {
            "tracing": True,
            "sample": 1.0,
            "spans": 1,
            "dropped_spans": 0,
        }


# ---------------------------------------------------------------------------
# Session integration: thread mode
# ---------------------------------------------------------------------------
class TestThreadModeTracing:
    def test_batch_yields_one_tree_with_phases(self, two_models):
        batch = [
            Query.delivery(packet, dest)
            for dest, model in two_models.items()
            for packet in model.ingress_packets
        ]
        with AnalysisSession(
            models=two_models.values(), workers=2, pool_size=2, telemetry=True
        ) as session:
            result = session.query_batch(batch)
            assert len(result) == len(batch)
            records = session.telemetry.tracer.spans()
        root, by_id = assert_single_tree(records)
        assert root["name"] == "request"
        names = {record["name"] for record in records}
        assert {"request", "shard", "lease"} <= names
        assert any(name.startswith("phase:") for name in names)
        # ≥ 4 levels: request → shard → lease → phase:*.
        phases = [r for r in records if r["name"].startswith("phase:")]
        assert max(depth_of(r, by_id) for r in phases) >= 3
        for phase in phases:
            chain = [a["name"] for a in ancestors(phase, by_id)]
            assert chain[0] == "lease" and chain[-1] == "request"

    def test_cached_pass_still_traces_request_without_leases(self, two_models):
        model = next(iter(two_models.values()))
        batch = [Query.delivery(p, model.dest) for p in model.ingress_packets]
        with AnalysisSession(model, telemetry=True) as session:
            session.query_batch(batch)
            session.telemetry.tracer.take()  # drop the warm pass
            result = session.query_batch(batch)
            assert result.cache_hits == len(batch)
            records = session.telemetry.tracer.spans()
        names = [record["name"] for record in records]
        assert "request" in names and "shard" in names
        assert "lease" not in names  # fully cached shards never lease

    def test_shard_reports_carry_attempts(self, two_models):
        model = next(iter(two_models.values()))
        batch = [Query.delivery(p, model.dest) for p in model.ingress_packets]
        with AnalysisSession(model) as session:
            solved = session.query_batch(batch)
            cached = session.query_batch(batch)
        (report,) = solved.shards
        assert report.attempts == 1  # one destination group, no retries
        assert report.failed_replicas == ()
        payload = solved.to_json()
        assert payload["shards"][0]["attempts"] == 1
        assert payload["shards"][0]["failed_replicas"] == []
        assert cached.to_json()["shards"][0]["attempts"] == 0

    def test_metrics_text_reflects_serving(self, two_models):
        model = next(iter(two_models.values()))
        batch = [Query.delivery(p, model.dest) for p in model.ingress_packets]
        with AnalysisSession(model) as session:
            session.query_batch(batch)
            session.query_batch(batch)
            text = session.metrics_text()
        assert "repro_requests_total 2" in text
        assert f"repro_queries_total {2 * len(batch)}" in text
        assert f"repro_cache_hits_total {len(batch)}" in text
        assert "repro_request_latency_seconds_count 2" in text
        assert 'repro_backend_phase_seconds{phase="solve"}' in text
        assert "repro_pool_size 1" in text

    def test_sampled_session_traces_a_subset(self, two_models):
        model = next(iter(two_models.values()))
        batch = [Query.delivery(p, model.dest) for p in model.ingress_packets]
        with AnalysisSession(
            model, telemetry=Telemetry(tracing=True, sample=0.5)
        ) as session:
            for _ in range(4):
                session.query_batch(batch)
                session.clear_cache()
            records = session.telemetry.tracer.spans()
        requests = [r for r in records if r["name"] == "request"]
        assert len(requests) == 2  # every 2nd root records
        traces = {r["trace"] for r in records}
        assert len(traces) == 2  # two recorded trees, nothing orphaned


# ---------------------------------------------------------------------------
# The acceptance criterion: one trace tree across the process boundary
# ---------------------------------------------------------------------------
class TestCrossProcessTrace:
    def test_traced_batch_on_a_process_pool_is_one_tree(
        self, all_models, all_pairs, tmp_path
    ):
        """The 112-pair FatTree k=4 batch on a 2-worker process pool yields
        a single trace tree with ≥4 span levels, whose worker-side solver
        spans (pids ≠ parent) nest under the correct shard spans."""
        with AnalysisSession(
            models=all_models.values(),
            workers=2,
            pool_size=2,
            pool_mode="process",
            telemetry=True,
        ) as session:
            result = session.query_batch(all_pairs)
            assert len(result) == 112
            records = session.telemetry.tracer.spans()
            trace_path = tmp_path / "trace.json"
            exported = session.telemetry.tracer.export_chrome(str(trace_path))

        root, by_id = assert_single_tree(records)
        assert root["name"] == "request"
        parent_pid = os.getpid()

        worker_spans = [r for r in records if r["name"] == "worker:query"]
        assert worker_spans, "no worker-side spans shipped back"
        worker_pids = {r["pid"] for r in worker_spans}
        assert parent_pid not in worker_pids
        assert len(worker_pids) >= 1

        # Every worker span re-parents into the caller's lease → shard →
        # request chain, under the shard that owns its destination.
        for span in worker_spans:
            chain = [a["name"] for a in ancestors(span, by_id)]
            assert chain == ["lease", "shard", "request"]
        shard_by_id = {r["span"]: r for r in records if r["name"] == "shard"}
        for span in worker_spans:
            lease = by_id[span["parent"]]
            shard = shard_by_id[lease["parent"]]
            assert span["attrs"]["packets"] == shard["attrs"]["queries"]

        # Solver phases recorded *inside* the worker process nest under
        # the worker span: ≥ 4 levels end to end.
        phases = [
            r
            for r in records
            if r["name"].startswith("phase:") and r["pid"] in worker_pids
        ]
        assert any(r["name"] == "phase:solve" for r in phases)
        for phase in phases:
            assert by_id[phase["parent"]]["name"] == "worker:query"
            assert depth_of(phase, by_id) == 4

        # Parent-side spans all carry the parent pid; the exported file
        # carries every record.
        assert root["pid"] == parent_pid
        assert exported >= len(records)
        payload = json.loads(trace_path.read_text())
        assert len(payload["traceEvents"]) == exported

    @pytest.mark.chaos
    def test_trace_survives_mid_batch_sigkill(self, all_models, all_pairs):
        """SIGKILL a busy worker mid-batch: the batch still answers, the
        trace is still one tree, and the retried shard's report carries
        the failed replica's index and its extra attempt."""
        with AnalysisSession(
            models=all_models.values(),
            workers=2,
            pool_size=2,
            pool_mode="process",
            max_attempts=3,
            telemetry=True,
        ) as session:
            for dest in all_models:
                session.warm(dest, solve=False)
            session.telemetry.tracer.take()  # warmup spans are not the test
            killed: list[int] = []
            stop = threading.Event()

            def killer():
                deadline = time.monotonic() + 60.0
                while time.monotonic() < deadline and not stop.is_set():
                    for replica in session.pool.replicas:
                        if replica.busy and replica.health == HEALTHY:
                            os.kill(replica.backend.pid, signal.SIGKILL)
                            killed.append(replica.index)
                            settle = time.monotonic() + 2.0
                            while time.monotonic() < settle:
                                if session.pool.failures > 0:
                                    return
                                time.sleep(0.005)
                    time.sleep(0.0005)

            thread = threading.Thread(target=killer)
            thread.start()
            result = session.query_batch(all_pairs)
            stop.set()
            thread.join(timeout=10.0)
            assert killed, "the killer never caught a busy worker"
            assert len(result) == 112
            assert session.retried_shards >= 1
            records = session.telemetry.tracer.spans()

            # Retry provenance: some shard retried away from the killed
            # replica and its report says so (satellite: attempts +
            # failed_replicas in ShardReport and its JSON).
            retried = [r for r in result.shards if r.failed_replicas]
            assert retried, "no shard recorded its failed replica"
            assert any(killed[0] in r.failed_replicas for r in retried)
            assert all(r.attempts > 1 for r in retried)
            payload = result.to_json()
            assert any(s["failed_replicas"] for s in payload["shards"])

        root, by_id = assert_single_tree(records)
        assert root["name"] == "request"
        # The crash left its marks on the tree: a shard-retry event on a
        # shard span, and still-correct worker parentage everywhere.
        events = [
            event[0]
            for record in records
            for event in record["events"]
        ]
        assert "shard-retry" in events
        worker_spans = [r for r in records if r["name"] == "worker:query"]
        assert worker_spans
        for span in worker_spans:
            chain = [a["name"] for a in ancestors(span, by_id)]
            assert chain == ["lease", "shard", "request"]

    @pytest.mark.chaos
    def test_timings_stay_monotone_across_respawn(self, all_models, all_pairs):
        """Respawned workers must not reset cumulative phase time: the
        parent accumulates each incarnation's timings (satellite 1)."""
        with AnalysisSession(
            models=all_models.values(),
            workers=2,
            pool_size=2,
            pool_mode="process",
            max_attempts=3,
        ) as session:
            session.query_batch(all_pairs)
            before = session.stats()["backend_timings"]
            assert before.get("solve", 0.0) > 0.0

            victim = session.pool.workers()[0]
            old_pid = victim.pid
            os.kill(old_pid, signal.SIGKILL)
            # The corpse is only noticed on contact; probe it so the
            # supervisor quarantines and respawns the slot.
            deadline = time.monotonic() + 30.0
            while time.monotonic() < deadline:
                session.pool.worker_reports()
                replica = session.pool.replicas[0]
                if replica.health == HEALTHY and replica.backend.pid != old_pid:
                    break
                time.sleep(0.05)
            replica = session.pool.replicas[0]
            assert replica.health == HEALTHY and replica.backend.pid != old_pid

            between = session.stats()["backend_timings"]
            for name, value in before.items():
                assert between.get(name, 0.0) >= value - 1e-9, (
                    f"phase {name!r} went backwards across the respawn"
                )
            session.clear_cache(keep_plans=True)
            session.query_batch(all_pairs)
            after = session.stats()["backend_timings"]
            assert after.get("solve", 0.0) > between.get("solve", 0.0) - 1e-9
            for name, value in between.items():
                assert after.get(name, 0.0) >= value - 1e-9


# ---------------------------------------------------------------------------
# Streaming integration: coalescer window spans + the metrics op
# ---------------------------------------------------------------------------
class TestStreamingTelemetry:
    def test_traced_streaming_request_roots_under_the_window(self, two_models):
        model = next(iter(two_models.values()))
        queries = [
            {"kind": "delivery", "ingress": [p["sw"], p["pt"]], "dest": model.dest}
            for p in model.ingress_packets[:4]
        ]

        async def run(session):
            async with QueryServer(session, window=0.1) as server:
                conn = await StreamClient.connect("127.0.0.1", server.port)
                replies = await asyncio.gather(
                    *[conn.request(query) for query in queries]
                )
                scrape = await conn.request({"op": "metrics"})
                await conn.aclose()
                return replies, scrape

        with AnalysisSession(model, telemetry=True) as session:
            replies, scrape = asyncio.run(run(session))
            records = session.telemetry.tracer.spans()

        assert all("error" not in reply for reply in replies)
        root, by_id = assert_single_tree(records)
        assert root["name"] == "coalesce-window"
        event_names = [event[0] for event in root["events"]]
        assert event_names.count("admitted") == len(queries)
        assert "dispatch" in event_names
        assert root["attrs"]["dispatched"] == len(queries)
        requests = [r for r in records if r["name"] == "request"]
        assert len(requests) == 1  # one coalesced batch, one request span
        assert requests[0]["parent"] == root["span"]
        # ≥ 4 levels: coalesce-window → request → shard → lease.
        leases = [r for r in records if r["name"] == "lease"]
        assert leases and all(depth_of(r, by_id) == 3 for r in leases)

        # The metrics op answers a Prometheus scrape over the socket.
        text = scrape["metrics"]
        assert "# TYPE repro_requests_total counter" in text
        assert "repro_requests_total 1" in text
        assert "repro_coalescer_depth 0" in text

    def test_cli_trace_out_and_metrics(self, tmp_path, capsys):
        from repro.service.cli import main as service_main

        trace_out = tmp_path / "trace.json"
        code = service_main(
            [
                "--topology",
                "fattree:4",
                "--scheme",
                "ecmp",
                "--dest",
                "1",
                "--all-pairs",
                "--trace-out",
                str(trace_out),
                "--metrics",
            ]
        )
        assert code == 0
        printed = capsys.readouterr().out
        assert "trace written to" in printed
        assert "repro_requests_total 1" in printed
        payload = json.loads(trace_out.read_text())
        names = {event["name"] for event in payload["traceEvents"]}
        assert {"request", "shard", "lease"} <= names

    def test_cli_rejects_bad_sample(self):
        from repro.service.cli import main as service_main

        with pytest.raises(SystemExit, match="trace-sample"):
            service_main(
                [
                    "--topology",
                    "fattree:4",
                    "--scheme",
                    "ecmp",
                    "--dest",
                    "1",
                    "--all-pairs",
                    "--trace-out",
                    "x.json",
                    "--trace-sample",
                    "2.0",
                ]
            )
