"""Tests for the reference semantics and the paper's theorems on small universes.

These are executable checks of Theorem 3.1 (the stochastic-matrix
semantics agrees with the denotational semantics), Proposition 4.2 /
Theorem 4.7 (the small-step chain and its closed form compute iteration),
and Lemma 4.1 (stochasticity).
"""

from fractions import Fraction

import pytest

from repro.core import syntax as s
from repro.core.distributions import Dist
from repro.core.packet import Packet, PacketUniverse
from repro.core.semantics.bigstep import big_step_matrix
from repro.core.semantics.denotational import StarDivergenceError, eval_policy
from repro.core.semantics.smallstep import (
    small_step_matrix,
    star_approximation,
    star_closed_form,
)


@pytest.fixture(scope="module")
def universe():
    return PacketUniverse({"f": [0, 1]})


PROGRAMS = [
    s.skip(),
    s.drop(),
    s.test("f", 0),
    s.assign("f", 1),
    s.neg(s.test("f", 1)),
    s.seq(s.test("f", 0), s.assign("f", 1)),
    s.union(s.test("f", 0), s.test("f", 1)),
    s.choice((s.assign("f", 0), Fraction(1, 3)), (s.assign("f", 1), Fraction(2, 3))),
    s.ite(s.test("f", 0), s.assign("f", 1), s.skip()),
    s.while_do(s.test("f", 0), s.choice((s.assign("f", 1), 0.5), (s.skip(), 0.5))),
    s.Union((s.skip(), s.assign("f", 1))),
]


class TestDenotational:
    def test_skip_and_drop(self, universe):
        a = frozenset(universe.packets)
        assert eval_policy(s.skip(), a) == Dist.point(a)
        assert eval_policy(s.drop(), a) == Dist.point(frozenset())

    def test_test_filters(self, universe):
        a = frozenset(universe.packets)
        out = eval_policy(s.test("f", 0), a)
        (result,) = out.support()
        assert result == frozenset({Packet({"f": 0})})

    def test_negation_complements(self, universe):
        a = frozenset(universe.packets)
        out = eval_policy(s.neg(s.test("f", 0)), a)
        (result,) = out.support()
        assert result == frozenset({Packet({"f": 1})})

    def test_union_takes_both_outputs(self):
        a = frozenset({Packet({"f": 0})})
        p = s.Union((s.skip(), s.assign("f", 1)))
        (result,) = eval_policy(p, a).support()
        assert result == frozenset({Packet({"f": 0}), Packet({"f": 1})})

    def test_choice_weights(self):
        a = frozenset({Packet({"f": 0})})
        p = s.choice((s.assign("f", 0), Fraction(1, 3)), (s.assign("f", 1), Fraction(2, 3)))
        out = eval_policy(p, a)
        assert out(frozenset({Packet({"f": 1})})) == Fraction(2, 3)

    def test_star_of_coin_flip_terminates(self):
        a = frozenset({Packet({"f": 0})})
        p = s.while_do(s.test("f", 0), s.choice((s.assign("f", 1), 0.5), (s.skip(), 0.5)))
        out = eval_policy(p, a)
        assert float(out(frozenset({Packet({"f": 1})}))) == pytest.approx(1.0, abs=1e-9)

    def test_non_terminating_loop_outputs_nothing(self):
        # ``while f=0 do skip`` never exits on input f=0; the limit assigns
        # all mass to the empty output set.
        a = frozenset({Packet({"f": 0})})
        out = eval_policy(s.while_do(s.test("f", 0), s.skip()), a)
        assert out(frozenset()) == 1

    def test_slowly_converging_star_raises_within_small_bound(self):
        a = frozenset({Packet({"f": 0})})
        p = s.while_do(s.test("f", 0), s.choice((s.assign("f", 1), 0.5), (s.skip(), 0.5)))
        with pytest.raises(StarDivergenceError):
            eval_policy(p, a, max_star_iterations=3, tolerance=0.0)


class TestTheorem31:
    """B[[p]]_{a,b} = [[p]](a)({b}) for every program and input set."""

    @pytest.mark.parametrize("program", PROGRAMS, ids=[str(p) for p in PROGRAMS])
    def test_big_step_agrees_with_denotational(self, universe, program):
        matrix = big_step_matrix(program, universe)
        for a in universe.subsets():
            reference = eval_policy(program, a)
            for b in universe.subsets():
                assert float(matrix.entry(a, b)) == pytest.approx(
                    float(reference(b)), abs=1e-9
                )

    @pytest.mark.parametrize("program", PROGRAMS, ids=[str(p) for p in PROGRAMS])
    def test_big_step_matrices_are_stochastic(self, universe, program):
        assert big_step_matrix(program, universe).is_stochastic()


class TestSmallStep:
    def test_small_step_chain_is_stochastic(self, universe):
        body = big_step_matrix(
            s.choice((s.assign("f", 0), 0.5), (s.assign("f", 1), 0.5)), universe
        )
        kernel = small_step_matrix(body)
        for dist in kernel.values():
            assert float(dist.total_mass()) == pytest.approx(1.0)

    def test_closed_form_matches_iteration(self, universe):
        body = big_step_matrix(
            s.seq(s.test("f", 0), s.choice((s.assign("f", 1), 0.5), (s.skip(), 0.5))),
            universe,
        )
        closed = star_closed_form(body)
        iterated = big_step_matrix(
            s.star(s.seq(s.test("f", 0), s.choice((s.assign("f", 1), 0.5), (s.skip(), 0.5)))),
            universe,
        )
        assert closed.close_to(iterated, tolerance=1e-9)

    def test_closed_form_is_stochastic(self, universe):
        body = big_step_matrix(s.assign("f", 1), universe)
        assert star_closed_form(body).is_stochastic()

    def test_approximations_converge_to_closed_form(self, universe):
        program = s.seq(s.test("f", 0), s.choice((s.assign("f", 1), 0.5), (s.skip(), 0.5)))
        body = big_step_matrix(program, universe)
        closed = star_closed_form(body)
        a = frozenset({Packet({"f": 0})})
        target = closed.kernel[a]
        previous_distance = None
        for steps in (1, 4, 16, 64):
            approx = star_approximation(body, steps).kernel[a]
            distance = approx.tv_distance(target)
            if previous_distance is not None:
                assert distance <= previous_distance + 1e-12
            previous_distance = distance
        assert previous_distance < 1e-9

    def test_while_loop_equals_star_encoding(self, universe):
        guard, body = s.test("f", 0), s.choice((s.assign("f", 1), 0.5), (s.skip(), 0.5))
        loop = big_step_matrix(s.while_do(guard, body), universe, star_method="closed_form")
        encoded = big_step_matrix(
            s.seq(s.star(s.seq(guard, body)), s.neg(guard)), universe, star_method="closed_form"
        )
        assert loop.close_to(encoded)
