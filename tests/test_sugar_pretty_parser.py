"""Tests for derived forms, the pretty printer, and the parser."""

import pytest

from repro.core import sugar
from repro.core import syntax as s
from repro.core.interpreter import Interpreter
from repro.core.packet import DROP, Packet
from repro.core.parser import ParseError, parse, parse_predicate
from repro.core.pretty import pretty, pretty_multiline


class TestSugar:
    def test_local_initialises_and_erases(self):
        p = sugar.local("x", 5, s.skip())
        out = Interpreter().run_packet(p, Packet({"sw": 1}))
        (packet,) = out.support()
        assert packet["x"] == 0  # erased after the scope

    def test_local_value_visible_inside_body(self):
        p = sugar.local("x", 5, s.ite(s.test("x", 5), s.assign("ok", 1), s.assign("ok", 0)))
        (packet,) = Interpreter().run_packet(p, Packet({})).support()
        assert packet["ok"] == 1

    def test_locals_in_nests(self):
        p = sugar.locals_in([("a", 1), ("b", 2)], s.skip())
        (packet,) = Interpreter().run_packet(p, Packet({})).support()
        assert packet["a"] == 0 and packet["b"] == 0

    def test_increment_saturates(self):
        inc = sugar.increment("h", 2)
        interp = Interpreter()
        assert next(iter(interp.run_packet(inc, Packet({"h": 0})).support()))["h"] == 1
        assert next(iter(interp.run_packet(inc, Packet({"h": 2})).support()))["h"] == 2

    def test_increment_negative_max_rejected(self):
        with pytest.raises(ValueError):
            sugar.increment("h", -1)

    def test_uniform_among_up_all_up(self):
        p = sugar.uniform_among_up(
            ["up1", "up2"], [s.assign("pt", 1), s.assign("pt", 2)], s.drop()
        )
        out = Interpreter().run_packet(p, Packet({"up1": 1, "up2": 1}))
        assert float(out.prob_of(lambda o: o is not DROP and o["pt"] == 1)) == pytest.approx(0.5)

    def test_uniform_among_up_partial(self):
        p = sugar.uniform_among_up(
            ["up1", "up2"], [s.assign("pt", 1), s.assign("pt", 2)], s.drop()
        )
        out = Interpreter().run_packet(p, Packet({"up1": 0, "up2": 1}))
        assert float(out.prob_of(lambda o: o is not DROP and o["pt"] == 2)) == 1.0

    def test_uniform_among_up_fallback(self):
        p = sugar.uniform_among_up(
            ["up1", "up2"], [s.assign("pt", 1), s.assign("pt", 2)], s.assign("pt", 9)
        )
        out = Interpreter().run_packet(p, Packet({"up1": 0, "up2": 0}))
        assert next(iter(out.support()))["pt"] == 9

    def test_uniform_among_up_length_mismatch(self):
        with pytest.raises(ValueError):
            sugar.uniform_among_up(["up1"], [], s.drop())

    def test_first_up_prefers_earlier_candidates(self):
        p = sugar.first_up(["up1", "up2"], [s.assign("pt", 1), s.assign("pt", 2)], s.drop())
        out = Interpreter().run_packet(p, Packet({"up1": 1, "up2": 1}))
        assert next(iter(out.support()))["pt"] == 1

    def test_set_all(self):
        p = sugar.set_all(["a", "b"], 7)
        (packet,) = Interpreter().run_packet(p, Packet({})).support()
        assert packet.as_dict() == {"a": 7, "b": 7}


class TestPretty:
    def test_primitives(self):
        assert pretty(s.skip()) == "skip"
        assert pretty(s.drop()) == "drop"
        assert pretty(s.test("sw", 1)) == "sw=1"
        assert pretty(s.assign("pt", 2)) == "pt<-2"

    def test_conditional(self):
        p = s.ite(s.test("sw", 1), s.assign("pt", 2), s.drop())
        assert pretty(p) == "if sw=1 then pt<-2 else drop"

    def test_choice_shows_probabilities(self):
        p = s.choice((s.assign("f", 1), 0.5), (s.assign("f", 2), 0.5))
        assert "@ 1/2" in pretty(p)

    def test_multiline_renders_case(self):
        p = s.case([(s.test("sw", 1), s.assign("pt", 2))], s.drop())
        text = pretty_multiline(p)
        assert "case sw=1 then" in text

    def test_repr_uses_pretty(self):
        assert repr(s.test("sw", 1)) == "sw=1"


class TestParser:
    @pytest.mark.parametrize(
        "source",
        [
            "skip",
            "drop",
            "sw=1",
            "pt<-2",
            "if sw=1 then pt<-2 else drop",
            "while ~(sw=2) do (t<-1 ; sw<-2)",
            "(pt<-2 @ 1/2 (+) pt<-3 @ 1/2)",
            "sw=1 ; pt=1",
        ],
    )
    def test_roundtrip_through_pretty(self, source):
        parsed = parse(source)
        assert parse(pretty(parsed)) == parsed

    def test_var_desugars_to_local(self):
        parsed = parse("var x <- 3 in x=3")
        (packet,) = Interpreter().run_packet(parsed, Packet({})).support()
        assert packet["x"] == 0

    def test_case_parses(self):
        parsed = parse("case sw=1 then pt<-2 else case sw=2 then pt<-3 else drop")
        assert isinstance(parsed, s.Case)
        assert len(parsed.branches) == 2

    def test_decimal_probabilities(self):
        parsed = parse("(pt<-2 @ 0.25 (+) pt<-3 @ 0.75)")
        assert isinstance(parsed, s.Choice)

    def test_parse_predicate_rejects_policies(self):
        with pytest.raises(ParseError):
            parse_predicate("pt<-2")

    def test_unbalanced_parens_rejected(self):
        with pytest.raises(ParseError):
            parse("(sw=1")

    def test_unexpected_character_rejected(self):
        with pytest.raises(ParseError):
            parse("sw=1 $ pt<-2")

    def test_comments_are_ignored(self):
        parsed = parse("sw=1 -- only a test\n; pt<-2")
        assert isinstance(parsed, s.Seq)
