"""Tests for the batched matrix backend, registry, and batched solver APIs."""

from fractions import Fraction

import pytest

from repro.analysis.latency import expected_hop_count, hop_count_cdf
from repro.analysis.queries import delivery_probability, output_distribution
from repro.analysis.resilience import resilience_table
from repro.backends import (
    BACKENDS,
    MatrixBackend,
    NativeBackend,
    ParallelBackend,
    PrismBackend,
    get_backend,
    resolve_backend,
)
from repro.core import syntax as s
from repro.core.compiler import compile_policy
from repro.core.distributions import Dist
from repro.core.fdd.matrix import (
    SymbolicPacket,
    classify,
    enumerate_classes,
    fdd_to_matrix,
    matrix_to_fdd,
)
from repro.core.fdd.node import FddManager
from repro.core.fdd.node import output_distribution as fdd_output_distribution
from repro.core.interpreter import Interpreter
from repro.core.markov import solve_absorption, solve_absorption_batched
from repro.core.packet import DROP, Packet
from repro.failure.models import independent_failure_program
from repro.network import running_example as ex
from repro.network.model import build_model
from repro.routing import downward_failable_ports, ecmp_policy
from repro.topology import fat_tree


@pytest.fixture(scope="module")
def example():
    return ex.build()


def fattree_model(failure_probability=None):
    topo = fat_tree(4)
    failable = downward_failable_ports(topo) if failure_probability else None
    failure = (
        independent_failure_program(failable, failure_probability)
        if failure_probability
        else None
    )
    return build_model(
        topo,
        routing=ecmp_policy(topo, 1),
        dest=1,
        failure=failure,
        failable=failable,
    )


class TestBatchedAbsorption:
    """solve_absorption_batched: one factorization, many right-hand sides."""

    CHAIN = {
        "a": {"b": 0.5, "drop": 0.5},
        "b": {"a": 0.25, "done": 0.75},
    }

    def test_result_matches_unbatched_solver(self):
        transient = ["a", "b"]
        absorbing = ["done", "drop"]
        batched = solve_absorption_batched(transient, absorbing, self.CHAIN).result()
        plain = solve_absorption(transient, absorbing, self.CHAIN)
        for state in transient:
            for target in absorbing:
                assert batched[state].get(target, 0.0) == pytest.approx(
                    plain[state].get(target, 0.0), abs=1e-12
                )

    def test_multi_rhs_solve_against_cached_factorization(self):
        import numpy as np

        system = solve_absorption_batched(["a", "b"], ["done", "drop"], self.CHAIN)
        rhs = np.eye(2)
        fundamental = system.solve(rhs)  # N = (I - Q)^{-1}
        # Expected number of visits from 'a' to itself: 1 / (1 - 0.5*0.25).
        assert fundamental[0, 0] == pytest.approx(1.0 / (1.0 - 0.125))
        assert system.solve(np.ones((2, 5))).shape == (2, 5)

    def test_rhs_shape_validated(self):
        import numpy as np

        system = solve_absorption_batched(["a", "b"], ["done", "drop"], self.CHAIN)
        with pytest.raises(ValueError):
            system.solve(np.ones((3, 1)))

    def test_doomed_states_reported(self):
        transitions = {"a": {"done": 1.0}, "spin": {"spin2": 1.0}, "spin2": {"spin": 1.0}}
        system = solve_absorption_batched(["a", "spin", "spin2"], ["done"], transitions)
        assert set(system.doomed) == {"spin", "spin2"}
        result = system.result()
        assert result.lost_mass["spin"] == 1.0
        assert result["a"]["done"] == pytest.approx(1.0)

    def test_empty_transient(self):
        result = solve_absorption_batched([], ["done"], {}).result()
        assert result == {}


def figure5_fdd(manager: FddManager):
    """pt=1 ? (pt<-2 ⊕ pt<-3) : pt=2 ? pt<-1 : pt=3 ? pt<-1 : drop."""
    from repro.core.fdd import ops

    split = ops.convex(
        manager,
        [
            (manager.from_assign("pt", 2), Fraction(1, 2)),
            (manager.from_assign("pt", 3), Fraction(1, 2)),
        ],
    )
    return ops.ite(
        manager.from_test("pt", 1),
        split,
        ops.ite(
            manager.from_test("pt", 2),
            manager.from_assign("pt", 1),
            ops.ite(manager.from_test("pt", 3), manager.from_assign("pt", 1), manager.false_leaf),
        ),
    )


class TestSeededConversion:
    """fdd_to_matrix restricted to the classes reachable from seeds."""

    def test_seeded_exploration_matches_full_domain(self):
        manager = FddManager()
        fdd = figure5_fdd(manager)
        full = fdd_to_matrix(fdd)
        seeded = fdd_to_matrix(fdd, seeds=[SymbolicPacket({"pt": 1})])
        assert set(seeded.classes) <= set(full.classes)
        for cls in seeded.classes:
            assert seeded.row(cls) == full.row(cls)

    def test_seeded_exploration_skips_unreachable_classes(self):
        manager = FddManager()
        fdd = figure5_fdd(manager)
        seeded = fdd_to_matrix(fdd, seeds=[SymbolicPacket({"pt": 2})])
        # 2 -> 1 -> {2, 3} closes the reachable set without the wildcard.
        assert SymbolicPacket({"pt": None}) not in seeded.classes
        assert len(seeded.classes) == 3

    def test_absorbing_when_freezes_classes(self):
        manager = FddManager()
        fdd = figure5_fdd(manager)
        frozen = SymbolicPacket({"pt": 2})
        seeded = fdd_to_matrix(
            fdd,
            seeds=[SymbolicPacket({"pt": 1})],
            absorbing_when=lambda cls: cls == frozen,
        )
        assert seeded.row(frozen) == Dist.point(frozen)

    def test_row_cache_is_shared_between_calls(self):
        manager = FddManager()
        fdd = figure5_fdd(manager)
        cache: dict = {}
        fdd_to_matrix(fdd, seeds=[SymbolicPacket({"pt": 1})], row_cache=cache)
        size_after_first = len(cache)
        assert size_after_first > 0
        fdd_to_matrix(fdd, seeds=[SymbolicPacket({"pt": 1})], row_cache=cache)
        assert len(cache) == size_after_first

    def test_roundtrip_through_matrix_to_fdd(self):
        manager = FddManager()
        fdd = figure5_fdd(manager)
        matrix = fdd_to_matrix(fdd)
        rows = {cls: matrix.row(cls) for cls in matrix.classes}
        rebuilt = matrix_to_fdd(manager, matrix.domains, rows)
        for value in (1, 2, 3, 9):
            packet = Packet({"pt": value})
            assert fdd_output_distribution(fdd, packet).close_to(
                fdd_output_distribution(rebuilt, packet)
            )

    def test_compiled_policy_roundtrip(self):
        """Round trip of a compiled multi-field policy preserves semantics."""
        manager = FddManager()
        policy = s.seq(
            s.ite(s.test("sw", 1), s.assign("pt", 2), s.assign("pt", 9)),
            s.choice((s.assign("sw", 2), Fraction(1, 3)), (s.skip(), Fraction(2, 3))),
        )
        fdd = compile_policy(policy, manager=manager)
        matrix = fdd_to_matrix(fdd)
        rows = {cls: matrix.row(cls) for cls in matrix.classes}
        rebuilt = matrix_to_fdd(manager, matrix.domains, rows)
        for packet in (Packet({"sw": 1, "pt": 1}), Packet({"sw": 7, "pt": 2})):
            assert fdd_output_distribution(fdd, packet).close_to(
                fdd_output_distribution(rebuilt, packet)
            )


class TestWideDomains:
    """Wide domains must not hit the Python recursion limit (iterative loops)."""

    WIDTH = 5000

    def test_enumerate_classes_wide_domain(self):
        classes = enumerate_classes({"sw": range(self.WIDTH)})
        assert len(classes) == self.WIDTH + 1

    def test_matrix_to_fdd_wide_chain(self):
        manager = FddManager()
        domains = {"sw": tuple(range(self.WIDTH))}
        rows = {
            SymbolicPacket({"sw": value}): Dist.point(SymbolicPacket({"sw": 0}))
            for value in range(self.WIDTH)
        }
        node = matrix_to_fdd(manager, domains, rows)
        out = fdd_output_distribution(node, Packet({"sw": self.WIDTH - 1}))
        assert out == Dist.point(Packet({"sw": 0}))
        assert fdd_output_distribution(node, Packet({"sw": self.WIDTH + 7})) == Dist.point(DROP)


class TestRegistry:
    def test_registered_names(self):
        assert set(BACKENDS) == {"native", "matrix", "parallel", "prism"}

    def test_get_backend_instantiates(self):
        assert isinstance(get_backend("native"), NativeBackend)
        assert isinstance(get_backend("matrix"), MatrixBackend)
        assert isinstance(get_backend("parallel", workers=1), ParallelBackend)
        assert isinstance(get_backend("prism"), PrismBackend)

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown backend"):
            get_backend("umfpack")

    def test_resolve_backend_passthrough(self):
        backend = MatrixBackend()
        assert resolve_backend(backend) is backend
        assert resolve_backend(None) is None
        assert isinstance(resolve_backend("matrix"), MatrixBackend)

    def test_matrix_backend_is_float_only(self):
        with pytest.raises(ValueError, match="float64"):
            MatrixBackend(exact=True)


class TestMatrixBackendEquivalence:
    """The acceptance bar: matrix ≡ interpreter within 1e-9."""

    def test_running_example_all_models(self, example):
        interp = Interpreter()
        backend = MatrixBackend()
        models = list(example.models_naive.items()) + list(example.models_resilient.items())
        for _, model in models:
            expected = interp.run_packet(model, example.ingress_packet)
            actual = backend.output_distribution(model, example.ingress_packet)
            assert expected.close_to(actual, tolerance=1e-9)

    @pytest.mark.parametrize("failure_probability", [None, 1 / 1000], ids=["f0", "f1000"])
    def test_fattree4_per_ingress(self, failure_probability):
        model = fattree_model(failure_probability)
        expected = model.output_distributions(interpreter=Interpreter())
        backend = MatrixBackend()
        actual = backend.output_distributions(model.policy, model.ingress_packets)
        for packet in model.ingress_packets:
            assert expected[packet].close_to(actual[packet], tolerance=1e-9)

    def test_one_factorization_for_all_ingresses(self):
        model = fattree_model(1 / 1000)
        backend = MatrixBackend()
        backend.output_distributions(model.policy, model.ingress_packets)
        stages = backend.plan(model.policy).loop_stages
        assert stages and all(stage.factorizations == 1 for stage in stages)
        # Re-querying hits the cached solutions: no new factorization.
        backend.output_distributions(model.policy, model.ingress_packets)
        assert all(stage.factorizations == 1 for stage in stages)

    def test_warm_presolves_ingress_union(self):
        model = fattree_model(1 / 1000)
        backend = MatrixBackend().warm(model.policy, model.ingress_packets)
        stages = backend.plan(model.policy).loop_stages
        assert stages and all(stage.factorizations == 1 for stage in stages)
        # Slice-wise queries after warming are pure cache hits.
        backend.output_distributions(model.policy, model.ingress_packets[:3])
        assert all(stage.factorizations == 1 for stage in stages)

    def test_incremental_growth_factorizes_only_new_states(self):
        """New seeds solve only the state-space growth (gateway composition).

        The loop stage's incremental solver must factorize the subsystem
        of newly discovered classes only — classes solved for an earlier
        ingress act as absorbing gateways — and repeated seeds must not
        factorize at all.
        """
        model = fattree_model(1 / 1000)
        backend = MatrixBackend(schur_crossover=0.0)  # pin the legacy path
        first = model.ingress_packets[:1]
        backend.output_distributions(model.policy, first)
        stage = backend.plan(model.policy).loop_stages[0]
        assert stage.factorizations == 1
        solved_initially = len(stage.solver.solved_states)
        assert solved_initially > 0

        backend.output_distributions(model.policy, model.ingress_packets)
        assert stage.factorizations == 2
        solved_total = len(stage.solver.solved_states)
        growth = solved_total - solved_initially
        assert growth > 0
        # The second factorization covered at most the growth, never the
        # already-solved system (doomed states may shrink it further).
        assert stage.solver.system is not None
        assert len(stage.solver.system.transient) <= growth

        # Results agree with a from-scratch solve of the full ingress set.
        fresh = MatrixBackend()
        expected = fresh.output_distributions(model.policy, model.ingress_packets)
        actual = backend.output_distributions(model.policy, model.ingress_packets)
        assert stage.factorizations == 2  # pure cache hits, no new factorization
        for packet in model.ingress_packets:
            assert expected[packet].close_to(actual[packet], tolerance=1e-9)

    def test_small_growth_runs_schur_update_without_factorizing(self):
        """Growing a warmed plan is a Schur update, not a fresh
        factorization, and agrees with a from-scratch backend."""
        model = fattree_model(1 / 1000)
        backend = MatrixBackend(schur_crossover=1e9)  # any growth goes Schur
        backend.output_distributions(model.policy, model.ingress_packets[:1])
        stage = backend.plan(model.policy).loop_stages[0]
        factorizations = stage.factorizations
        assert factorizations >= 1
        solved = len(stage.solver.solved_states)

        actual = backend.output_distributions(model.policy, model.ingress_packets)
        assert len(stage.solver.solved_states) > solved  # genuine growth
        assert stage.factorizations == factorizations  # zero full factorizations
        assert stage.schur_updates >= 1

        fresh = MatrixBackend()
        expected = fresh.output_distributions(model.policy, model.ingress_packets)
        for packet in model.ingress_packets:
            assert expected[packet].close_to(actual[packet], tolerance=1e-9)

    def test_solver_stats_aggregates_counters(self):
        model = fattree_model(1 / 1000)
        backend = MatrixBackend(schur_crossover=1e9)
        backend.output_distributions(model.policy, model.ingress_packets[:1])
        stats = backend.solver_stats()
        assert stats["factorizations"] >= 1
        assert stats["assembly_rows"] > 0
        backend.output_distributions(model.policy, model.ingress_packets)
        grown = backend.solver_stats()
        assert grown["schur_updates"] > stats["schur_updates"]
        assert grown["factorizations"] == stats["factorizations"]

    def test_uniform_and_dist_inputs(self, example):
        model = example.models_resilient["f2"]
        native = NativeBackend()
        backend = MatrixBackend()
        packets = [example.ingress_packet]
        assert native.output_distribution(model, packets).close_to(
            backend.output_distribution(model, packets), tolerance=1e-9
        )
        dist = Dist.point(example.ingress_packet)
        assert native.output_distribution(model, dist).close_to(
            backend.output_distribution(model, dist), tolerance=1e-9
        )

    def test_transition_matrix_cached_by_canonical_fdd(self):
        backend = MatrixBackend()
        # Two syntactically different but semantically equal loop-free policies.
        first = s.seq(s.test("pt", 1), s.assign("pt", 2))
        second = s.seq(s.test("pt", 1), s.skip(), s.assign("pt", 2))
        assert backend.transition_matrix(first) is backend.transition_matrix(second)

    def test_classify_concretize_consistency(self, example):
        """Entry classes contain their concrete entry packets."""
        backend = MatrixBackend()
        model = example.models_resilient["f1"]
        backend.output_distribution(model, example.ingress_packet)
        (stage,) = backend.plan(model).loop_stages
        cls = classify(example.ingress_packet, stage.domains)
        assert all(
            cls.value(field) in (value, None)
            for field, value in example.ingress_packet.items()
            if field in stage.domains
        )


class TestBackendThreading:
    """backend= reaches the analysis entry points."""

    def test_output_distribution_backend_matches_default(self, example):
        model = example.models_naive["f2"]
        packets = [example.ingress_packet]
        default = output_distribution(model, inputs=packets)
        matrix = output_distribution(model, inputs=packets, backend="matrix")
        assert default.close_to(matrix, tolerance=1e-9)

    def test_delivery_probability_backend(self):
        model = fattree_model(1 / 1000)
        default = delivery_probability(model)
        matrix = delivery_probability(model, backend="matrix")
        assert matrix == pytest.approx(default, abs=1e-9)

    def test_hop_count_queries_backend(self):
        topo = fat_tree(4)
        failable = downward_failable_ports(topo)
        model = build_model(
            topo,
            routing=ecmp_policy(topo, 1),
            dest=1,
            failure=independent_failure_program(failable, 1 / 100),
            failable=failable,
            count_hops=True,
        )
        backend = MatrixBackend()
        assert hop_count_cdf(model, max_hops=8, backend=backend) == pytest.approx(
            hop_count_cdf(model, max_hops=8), abs=1e-9
        )
        assert expected_hop_count(model, backend=backend) == pytest.approx(
            expected_hop_count(model), abs=1e-9
        )

    def test_exact_with_float_backend_rejected(self, example):
        with pytest.raises(ValueError, match="exact-mode backend instance"):
            output_distribution(
                example.models_naive["f0"],
                inputs=[example.ingress_packet],
                exact=True,
                backend="matrix",
            )
        # Registry names instantiate float-mode backends, so these are
        # rejected too — only an exact-configured instance qualifies.
        with pytest.raises(ValueError, match="exact-mode backend instance"):
            output_distribution(
                example.models_naive["f0"],
                inputs=[example.ingress_packet],
                exact=True,
                backend="native",
            )

    def test_exact_with_exact_backend_allowed(self, example):
        from fractions import Fraction

        from repro.backends import NativeBackend

        model = example.models_naive["f1"]
        exact_backend = NativeBackend(exact=True)
        dist = output_distribution(
            model,
            inputs=[example.ingress_packet],
            exact=True,
            backend=exact_backend,
        )
        reference = output_distribution(
            model, inputs=[example.ingress_packet], exact=True
        )
        assert all(isinstance(prob, (Fraction, int)) for _, prob in dist.items())
        assert dist.close_to(reference, tolerance=0)

    def test_prism_backend_rejected_for_distribution_queries(self, example):
        with pytest.raises(TypeError, match="does not support distribution"):
            output_distribution(
                example.models_naive["f0"],
                inputs=[example.ingress_packet],
                backend="prism",
            )

    def test_prism_backend_rejected_for_resilience_queries(self):
        with pytest.raises(TypeError, match="does not support resilience"):
            resilience_table(lambda scheme, bound: None, ["x"], [0], backend="prism")

    def test_interpreter_and_backend_conflict(self):
        model = build_model(
            fat_tree(4), routing=ecmp_policy(fat_tree(4), 1), dest=1, count_hops=True
        )
        with pytest.raises(ValueError, match="not both"):
            hop_count_cdf(model, backend="matrix", interpreter=Interpreter())

    def test_resilience_table_backend_agrees_with_structural(self):
        def factory(scheme, bound):
            return fattree_model(1 / 1000 if scheme == "faulty" else None)

        schemes = ["healthy", "faulty"]
        exact = resilience_table(factory, schemes, [None])
        numeric = resilience_table(factory, schemes, [None], backend="matrix")
        native = resilience_table(factory, schemes, [None], backend="native")
        assert exact == numeric == native
        assert exact["healthy"][None] is True
        assert exact["faulty"][None] is False
