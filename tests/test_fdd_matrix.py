"""Tests for symbolic packet classes and FDD <-> sparse matrix conversion."""

from fractions import Fraction

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import syntax as s
from repro.core.compiler import compile_policy
from repro.core.distributions import Dist
from repro.core.fdd import matrix as matrix_module
from repro.core.fdd import ops
from repro.core.fdd.actions import Action
from repro.core.fdd.evaluator import ClassRow
from repro.core.fdd.matrix import (
    DomainTooLargeError,
    SymbolicPacket,
    class_row,
    class_transition,
    classify,
    domain_size,
    enumerate_classes,
    evaluate_class,
    fdd_to_matrix,
    fdd_to_matrix_reference,
    fresh_values,
    matrix_domains,
    matrix_to_fdd,
)
from repro.core.fdd.node import FddManager, output_distribution
from repro.core.packet import DROP, Packet


class TestSymbolicPacket:
    def test_wildcard_never_satisfies_tests(self):
        cls = SymbolicPacket({"pt": None})
        assert not cls.satisfies_test("pt", 1)

    def test_concrete_value_satisfies_matching_test(self):
        cls = SymbolicPacket({"pt": 2})
        assert cls.satisfies_test("pt", 2)
        assert not cls.satisfies_test("pt", 3)

    def test_apply_action(self):
        cls = SymbolicPacket({"pt": 1, "sw": None})
        updated = cls.apply_action(Action({"pt": 9}))
        assert updated.value("pt") == 9
        assert updated.value("sw") is None

    def test_apply_drop(self):
        assert SymbolicPacket({"pt": 1}).apply_action(DROP) is DROP or SymbolicPacket(
            {"pt": 1}
        ).apply_action(DROP) == DROP

    def test_representative_uses_fresh_values_for_wildcards(self):
        cls = SymbolicPacket({"pt": None, "sw": 3})
        packet = cls.representative({"pt": 99, "sw": 0})
        assert packet["pt"] == 99 and packet["sw"] == 3

    def test_classify(self):
        domains = {"pt": [1, 2]}
        assert classify(Packet({"pt": 2}), domains).value("pt") == 2
        assert classify(Packet({"pt": 7}), domains).value("pt") is None


class TestDomains:
    def test_enumerate_classes_includes_wildcards(self):
        classes = enumerate_classes({"pt": [1, 2]})
        assert len(classes) == 3

    def test_domain_size(self):
        assert domain_size({"a": [1, 2], "b": [1]}) == 6

    def test_limit_enforced(self):
        with pytest.raises(DomainTooLargeError):
            enumerate_classes({"a": range(100), "b": range(100)}, limit=100)

    def test_fresh_values_avoid_mentioned(self):
        fresh = fresh_values({"pt": [0, 1, 2]})
        assert fresh["pt"] not in {0, 1, 2}


class TestConversion:
    def make_example_fdd(self, manager: FddManager):
        """The FDD of Figure 5: pt=1 ? (pt<-2 ⊕ pt<-3) : pt=2 ? pt<-1 : pt=3 ? pt<-1 : drop."""
        split = ops.convex(
            manager,
            [(manager.from_assign("pt", 2), Fraction(1, 2)), (manager.from_assign("pt", 3), Fraction(1, 2))],
        )
        return ops.ite(
            manager.from_test("pt", 1),
            split,
            ops.ite(
                manager.from_test("pt", 2),
                manager.from_assign("pt", 1),
                ops.ite(manager.from_test("pt", 3), manager.from_assign("pt", 1), manager.false_leaf),
            ),
        )

    def test_figure5_matrix(self):
        manager = FddManager()
        fdd = self.make_example_fdd(manager)
        matrix = fdd_to_matrix(fdd)
        # Symbolic packets pt=1, pt=2, pt=3, pt=* plus the drop column.
        assert len(matrix.classes) == 4
        assert matrix.matrix.shape == (5, 5)
        assert matrix.is_stochastic()
        row = matrix.row(SymbolicPacket({"pt": 1}))
        assert float(row(SymbolicPacket({"pt": 2}))) == pytest.approx(0.5)
        assert float(row(SymbolicPacket({"pt": 3}))) == pytest.approx(0.5)
        wildcard_row = matrix.row(SymbolicPacket({"pt": None}))
        assert float(wildcard_row(DROP)) == pytest.approx(1.0)

    def test_evaluate_class_matches_concrete_evaluation(self):
        manager = FddManager()
        fdd = self.make_example_fdd(manager)
        for value, cls in [(1, SymbolicPacket({"pt": 1})), (2, SymbolicPacket({"pt": 2}))]:
            symbolic = evaluate_class(fdd, cls)
            concrete = output_distribution(fdd, Packet({"pt": value}))
            assert symbolic.map(lambda a: a if a is DROP else tuple(a.mods)) is not None
            assert float(symbolic.total_mass()) == pytest.approx(float(concrete.total_mass()))

    def test_class_transition(self):
        manager = FddManager()
        fdd = ops.sequence(manager.from_test("pt", 1), manager.from_assign("pt", 2))
        dist = class_transition(fdd, SymbolicPacket({"pt": 1}))
        assert dist(SymbolicPacket({"pt": 2})) == 1

    def test_extra_values_extend_the_domain(self):
        manager = FddManager()
        fdd = manager.from_test("pt", 1)
        matrix = fdd_to_matrix(fdd, extra_values={"pt": [5]})
        assert len(matrix.classes) == 3  # pt=1, pt=5, pt=*

    def test_matrix_to_fdd_roundtrip(self):
        manager = FddManager()
        fdd = self.make_example_fdd(manager)
        matrix = fdd_to_matrix(fdd)
        rows = {cls: matrix.row(cls) for cls in matrix.classes}
        rebuilt = matrix_to_fdd(manager, matrix.domains, rows)
        for value in (1, 2, 3, 7):
            packet = Packet({"pt": value})
            original = output_distribution(fdd, packet)
            recovered = output_distribution(rebuilt, packet)
            assert original.close_to(recovered)

    def test_matrix_to_fdd_default_leaf(self):
        manager = FddManager()
        rebuilt = matrix_to_fdd(
            manager,
            {"pt": (1,)},
            {SymbolicPacket({"pt": 1}): Dist.point(SymbolicPacket({"pt": 1}))},
        )
        assert output_distribution(rebuilt, Packet({"pt": 9})) == Dist.point(DROP)


class TestClassRow:
    def test_class_row_matches_class_transition(self):
        manager = FddManager()
        fdd = TestConversion().make_example_fdd(manager)
        for cls in enumerate_classes({"pt": [1, 2, 3]}):
            row = class_row(fdd, cls)
            dist = class_transition(fdd, cls)
            assert dict(row.items()) == pytest.approx(
                {outcome: float(prob) for outcome, prob in dist.items()}
            )

    def test_duplicate_outcomes_merge_at_construction(self):
        # A class whose two distinct actions collapse to the same outcome
        # class: both halves must merge into one entry so dict(row.items())
        # is lossless.
        manager = FddManager()
        split = ops.convex(
            manager,
            [
                (manager.from_assign("pt", 2), Fraction(1, 2)),
                (manager.from_assign("pt", 2), Fraction(1, 4)),
                (manager.false_leaf, Fraction(1, 4)),
            ],
        )
        row = class_row(split, SymbolicPacket({"pt": 2}))
        weights = dict(row.items())
        assert len(weights) == len(row.outcomes)
        assert weights[SymbolicPacket({"pt": 2})] == pytest.approx(0.75)
        assert weights[DROP] == pytest.approx(0.25)
        assert dict(row.to_dist().items()) == pytest.approx(weights)

    def test_from_items_merges(self):
        cls = SymbolicPacket({"pt": 1})
        row = ClassRow.from_items([(cls, 0.25), (cls, 0.25), (DROP, 0.5)])
        assert dict(row.items()) == {cls: 0.5, DROP: 0.5}
        assert row.support() == (cls, DROP)


class TestSinglePassAssembly:
    """The seeded rewrite evaluates every class exactly once (the old
    two-pass path computed each row twice when no row_cache was given)."""

    def test_each_class_evaluated_exactly_once_without_row_cache(self, monkeypatch):
        manager = FddManager()
        fdd = TestConversion().make_example_fdd(manager)
        calls: dict[SymbolicPacket, int] = {}
        real = class_row

        def counting(node, cls, leaf_cache=None):
            calls[cls] = calls.get(cls, 0) + 1
            return real(node, cls, leaf_cache)

        monkeypatch.setattr(matrix_module, "class_row", counting)
        matrix = fdd_to_matrix(fdd, seeds=[SymbolicPacket({"pt": 1})])
        assert matrix.assembled_rows == len(matrix.classes) > 0
        assert calls  # the seeded path went through the kernel
        assert all(count == 1 for count in calls.values()), calls

    def test_row_cache_skips_reevaluation_across_calls(self, monkeypatch):
        manager = FddManager()
        fdd = TestConversion().make_example_fdd(manager)
        calls: dict[SymbolicPacket, int] = {}
        real = class_row

        def counting(node, cls, leaf_cache=None):
            calls[cls] = calls.get(cls, 0) + 1
            return real(node, cls, leaf_cache)

        monkeypatch.setattr(matrix_module, "class_row", counting)
        cache: dict = {}
        fdd_to_matrix(fdd, seeds=[SymbolicPacket({"pt": 1})], row_cache=cache)
        first = dict(calls)
        fdd_to_matrix(fdd, seeds=[SymbolicPacket({"pt": 1})], row_cache=cache)
        assert calls == first  # second assembly served entirely from the cache


def _matrices_identical(vectorized, reference, tolerance=1e-12):
    """Entry-identical as functions of (source class, target class).

    Seeded class *discovery order* is not part of the contract: the
    reference BFS expands ``Dist.support()`` (a frozenset, hash-ordered)
    while the vectorized pass expands outcomes in row order, so the same
    class set may be indexed differently.  Align the reference onto the
    vectorized indexing (drop column last in both) before demanding
    entry-identity within ``tolerance``.
    """
    assert set(vectorized.classes) == set(reference.classes)
    assert vectorized.domains == reference.domains
    assert vectorized.matrix.shape == reference.matrix.shape
    ref_index = {cls: i for i, cls in enumerate(reference.classes)}
    perm = [ref_index[cls] for cls in vectorized.classes] + [len(reference.classes)]
    aligned = reference.matrix[perm, :][:, perm]
    delta = (vectorized.matrix - aligned).toarray()
    assert np.abs(delta).max(initial=0.0) <= tolerance


_FIELDS = ["f", "g"]
_VALUES = [0, 1, 2]
_tests_st = st.builds(s.test, st.sampled_from(_FIELDS), st.sampled_from(_VALUES))
_assigns_st = st.builds(s.assign, st.sampled_from(_FIELDS), st.sampled_from(_VALUES))


def _programs(depth: int = 2):
    base = st.one_of(_assigns_st, _tests_st, st.just(s.skip()), st.just(s.drop()))
    if depth == 0:
        return base
    sub = _programs(depth - 1)
    predicates = st.one_of(_tests_st, st.just(s.skip()), st.just(s.drop()))
    probability = st.sampled_from([Fraction(1, 4), Fraction(1, 2), Fraction(3, 4)])
    return st.one_of(
        base,
        st.builds(lambda a, b: s.seq(a, b), sub, sub),
        st.builds(lambda a, b, r: s.choice((a, r), (b, 1 - r)), sub, sub, probability),
        st.builds(s.ite, predicates, sub, sub),
    )


class TestVectorizedAssemblyEquivalence:
    """Vectorized single-pass assembly ≡ the old per-row reference path."""

    @settings(max_examples=60, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(policy=_programs(2))
    def test_full_domain_assembly_identical(self, policy):
        fdd = compile_policy(policy, exact=True)
        _matrices_identical(fdd_to_matrix(fdd), fdd_to_matrix_reference(fdd))

    @settings(max_examples=60, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(policy=_programs(2), data=st.data())
    def test_seeded_assembly_identical(self, policy, data):
        fdd = compile_policy(policy, exact=True)
        domains = matrix_domains(fdd)
        classes = enumerate_classes(domains)
        seeds = data.draw(
            st.lists(st.sampled_from(classes), min_size=1, max_size=4, unique=True)
        )
        absorb_value = data.draw(st.sampled_from([None, 0, 1, 2]))

        def absorbing(cls):
            return cls.value("f") == absorb_value

        predicate = None if absorb_value is None else absorbing
        _matrices_identical(
            fdd_to_matrix(fdd, seeds=seeds, absorbing_when=predicate),
            fdd_to_matrix_reference(fdd, seeds=seeds, absorbing_when=predicate),
        )
