"""Tests for symbolic packet classes and FDD <-> sparse matrix conversion."""

from fractions import Fraction

import pytest

from repro.core.distributions import Dist
from repro.core.fdd import ops
from repro.core.fdd.actions import Action
from repro.core.fdd.matrix import (
    DomainTooLargeError,
    SymbolicPacket,
    class_transition,
    classify,
    domain_size,
    enumerate_classes,
    evaluate_class,
    fdd_to_matrix,
    fresh_values,
    matrix_to_fdd,
)
from repro.core.fdd.node import FddManager, output_distribution
from repro.core.packet import DROP, Packet


class TestSymbolicPacket:
    def test_wildcard_never_satisfies_tests(self):
        cls = SymbolicPacket({"pt": None})
        assert not cls.satisfies_test("pt", 1)

    def test_concrete_value_satisfies_matching_test(self):
        cls = SymbolicPacket({"pt": 2})
        assert cls.satisfies_test("pt", 2)
        assert not cls.satisfies_test("pt", 3)

    def test_apply_action(self):
        cls = SymbolicPacket({"pt": 1, "sw": None})
        updated = cls.apply_action(Action({"pt": 9}))
        assert updated.value("pt") == 9
        assert updated.value("sw") is None

    def test_apply_drop(self):
        assert SymbolicPacket({"pt": 1}).apply_action(DROP) is DROP or SymbolicPacket(
            {"pt": 1}
        ).apply_action(DROP) == DROP

    def test_representative_uses_fresh_values_for_wildcards(self):
        cls = SymbolicPacket({"pt": None, "sw": 3})
        packet = cls.representative({"pt": 99, "sw": 0})
        assert packet["pt"] == 99 and packet["sw"] == 3

    def test_classify(self):
        domains = {"pt": [1, 2]}
        assert classify(Packet({"pt": 2}), domains).value("pt") == 2
        assert classify(Packet({"pt": 7}), domains).value("pt") is None


class TestDomains:
    def test_enumerate_classes_includes_wildcards(self):
        classes = enumerate_classes({"pt": [1, 2]})
        assert len(classes) == 3

    def test_domain_size(self):
        assert domain_size({"a": [1, 2], "b": [1]}) == 6

    def test_limit_enforced(self):
        with pytest.raises(DomainTooLargeError):
            enumerate_classes({"a": range(100), "b": range(100)}, limit=100)

    def test_fresh_values_avoid_mentioned(self):
        fresh = fresh_values({"pt": [0, 1, 2]})
        assert fresh["pt"] not in {0, 1, 2}


class TestConversion:
    def make_example_fdd(self, manager: FddManager):
        """The FDD of Figure 5: pt=1 ? (pt<-2 ⊕ pt<-3) : pt=2 ? pt<-1 : pt=3 ? pt<-1 : drop."""
        split = ops.convex(
            manager,
            [(manager.from_assign("pt", 2), Fraction(1, 2)), (manager.from_assign("pt", 3), Fraction(1, 2))],
        )
        return ops.ite(
            manager.from_test("pt", 1),
            split,
            ops.ite(
                manager.from_test("pt", 2),
                manager.from_assign("pt", 1),
                ops.ite(manager.from_test("pt", 3), manager.from_assign("pt", 1), manager.false_leaf),
            ),
        )

    def test_figure5_matrix(self):
        manager = FddManager()
        fdd = self.make_example_fdd(manager)
        matrix = fdd_to_matrix(fdd)
        # Symbolic packets pt=1, pt=2, pt=3, pt=* plus the drop column.
        assert len(matrix.classes) == 4
        assert matrix.matrix.shape == (5, 5)
        assert matrix.is_stochastic()
        row = matrix.row(SymbolicPacket({"pt": 1}))
        assert float(row(SymbolicPacket({"pt": 2}))) == pytest.approx(0.5)
        assert float(row(SymbolicPacket({"pt": 3}))) == pytest.approx(0.5)
        wildcard_row = matrix.row(SymbolicPacket({"pt": None}))
        assert float(wildcard_row(DROP)) == pytest.approx(1.0)

    def test_evaluate_class_matches_concrete_evaluation(self):
        manager = FddManager()
        fdd = self.make_example_fdd(manager)
        for value, cls in [(1, SymbolicPacket({"pt": 1})), (2, SymbolicPacket({"pt": 2}))]:
            symbolic = evaluate_class(fdd, cls)
            concrete = output_distribution(fdd, Packet({"pt": value}))
            assert symbolic.map(lambda a: a if a is DROP else tuple(a.mods)) is not None
            assert float(symbolic.total_mass()) == pytest.approx(float(concrete.total_mass()))

    def test_class_transition(self):
        manager = FddManager()
        fdd = ops.sequence(manager.from_test("pt", 1), manager.from_assign("pt", 2))
        dist = class_transition(fdd, SymbolicPacket({"pt": 1}))
        assert dist(SymbolicPacket({"pt": 2})) == 1

    def test_extra_values_extend_the_domain(self):
        manager = FddManager()
        fdd = manager.from_test("pt", 1)
        matrix = fdd_to_matrix(fdd, extra_values={"pt": [5]})
        assert len(matrix.classes) == 3  # pt=1, pt=5, pt=*

    def test_matrix_to_fdd_roundtrip(self):
        manager = FddManager()
        fdd = self.make_example_fdd(manager)
        matrix = fdd_to_matrix(fdd)
        rows = {cls: matrix.row(cls) for cls in matrix.classes}
        rebuilt = matrix_to_fdd(manager, matrix.domains, rows)
        for value in (1, 2, 3, 7):
            packet = Packet({"pt": value})
            original = output_distribution(fdd, packet)
            recovered = output_distribution(rebuilt, packet)
            assert original.close_to(recovered)

    def test_matrix_to_fdd_default_leaf(self):
        manager = FddManager()
        rebuilt = matrix_to_fdd(
            manager,
            {"pt": (1,)},
            {SymbolicPacket({"pt": 1}): Dist.point(SymbolicPacket({"pt": 1}))},
        )
        assert output_distribution(rebuilt, Packet({"pt": 9})) == Dist.point(DROP)
