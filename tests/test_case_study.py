"""Integration tests: the F10 data-center case study of §7 (scaled to p=4).

These check the qualitative content of Figures 11 and 12: the exact
k-resilience levels of the three schemes, the refinement relationships,
the ordering of delivery probabilities, and the path-stretch behaviour on
AB FatTree versus standard FatTree.
"""

import pytest

from repro.analysis import expected_hop_count, hop_count_cdf
from repro.analysis.resilience import refinement_table, resilience_table
from repro.routing import f10_model
from repro.topology import ab_fat_tree, fat_tree

PR = 0.25  # per-hop link failure probability used throughout


@pytest.fixture(scope="module")
def abft():
    return ab_fat_tree(4)


@pytest.fixture(scope="module")
def ft():
    return fat_tree(4)


def factory(topo):
    def build(scheme, k):
        return f10_model(topo, 1, scheme=scheme, failure_probability=PR, max_failures=k)

    return build


class TestFigure11b:
    """k-resilience of the three schemes on the AB FatTree."""

    @pytest.fixture(scope="class")
    def table(self, abft):
        return resilience_table(
            factory(abft), ["f10_0", "f10_3", "f10_3_5"], [0, 1, 2, 3, 4]
        )

    def test_f10_0_is_0_resilient(self, table):
        assert table["f10_0"] == {0: True, 1: False, 2: False, 3: False, 4: False}

    def test_f10_3_is_2_resilient(self, table):
        assert table["f10_3"] == {0: True, 1: True, 2: True, 3: False, 4: False}

    def test_f10_3_5_is_3_resilient(self, table):
        assert table["f10_3_5"] == {0: True, 1: True, 2: True, 3: True, 4: False}

    def test_unbounded_failures_break_every_scheme(self, abft):
        build = factory(abft)
        for scheme in ("f10_0", "f10_3", "f10_3_5"):
            assert not build(scheme, None).certainly_delivers()


class TestFigure11c:
    """Refinement relationships between the schemes."""

    @pytest.fixture(scope="class")
    def table(self, abft):
        return refinement_table(
            factory(abft),
            [("f10_0", "f10_3"), ("f10_3", "f10_3_5"), ("f10_3_5", "teleport")],
            [0, 1, 3, 4],
        )

    def test_f10_0_versus_f10_3(self, table):
        assert table[("f10_0", "f10_3")] == {0: "≡", 1: "<", 3: "<", 4: "<"}

    def test_f10_3_versus_f10_3_5(self, table):
        assert table[("f10_3", "f10_3_5")] == {0: "≡", 1: "≡", 3: "<", 4: "<"}

    def test_f10_3_5_versus_teleport(self, table):
        assert table[("f10_3_5", "teleport")] == {0: "≡", 1: "≡", 3: "≡", 4: "<"}


class TestFigure12a:
    """Delivery probability under unbounded failures."""

    def test_resilience_ordering_of_delivery_probability(self, abft):
        build = factory(abft)
        probabilities = {
            scheme: build(scheme, None).delivery_probability()
            for scheme in ("f10_0", "f10_3", "f10_3_5")
        }
        assert probabilities["f10_0"] < probabilities["f10_3"] < probabilities["f10_3_5"]
        assert probabilities["f10_0"] == pytest.approx(0.786, abs=0.01)
        assert probabilities["f10_3_5"] > 0.99

    def test_delivery_improves_as_failures_become_rare(self, abft):
        low = f10_model(abft, 1, scheme="f10_0", failure_probability=1 / 128).delivery_probability()
        high = f10_model(abft, 1, scheme="f10_0", failure_probability=1 / 4).delivery_probability()
        assert high < low <= 1.0


class TestFigure12bc:
    """Path stretch: hop-count CDF and conditional expectation."""

    def test_f10_0_delivers_everything_within_four_hops(self, abft):
        model = f10_model(abft, 1, scheme="f10_0", failure_probability=PR, count_hops=True)
        cdf = hop_count_cdf(model)
        assert cdf[4] == pytest.approx(model.delivery_probability(), abs=1e-9)

    def test_resilient_schemes_deliver_more_with_extra_hops(self, abft):
        base = f10_model(abft, 1, scheme="f10_0", failure_probability=PR, count_hops=True)
        resilient = f10_model(abft, 1, scheme="f10_3_5", failure_probability=PR, count_hops=True)
        cdf_base, cdf_res = hop_count_cdf(base), hop_count_cdf(resilient)
        assert cdf_res[4] == pytest.approx(cdf_base[4], abs=1e-9)
        assert cdf_res[6] > cdf_base[4]

    def test_fattree_detours_are_longer_than_abfattree(self, abft, ft):
        ab = f10_model(abft, 1, scheme="f10_3_5", failure_probability=PR, count_hops=True)
        standard = f10_model(ft, 1, scheme="f10_3_5", failure_probability=PR, count_hops=True)
        cdf_ab, cdf_ft = hop_count_cdf(ab), hop_count_cdf(standard)
        # The AB FatTree recovers traffic at 6 hops; the FatTree needs 8.
        assert cdf_ab[6] > cdf_ft[6]
        assert expected_hop_count(standard) > expected_hop_count(ab)

    def test_f10_0_expected_hop_count_decreases_with_failure_probability(self, abft):
        rare = f10_model(abft, 1, scheme="f10_0", failure_probability=1 / 128, count_hops=True)
        frequent = f10_model(abft, 1, scheme="f10_0", failure_probability=1 / 4, count_hops=True)
        assert expected_hop_count(frequent) < expected_hop_count(rare)
