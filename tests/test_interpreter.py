"""Tests for the forward interpreter and its possibility analysis."""

from fractions import Fraction

import pytest

from repro.core import syntax as s
from repro.core.compiler import GuardedFragmentError
from repro.core.distributions import Dist
from repro.core.interpreter import Interpreter, eval_predicate, output_distribution
from repro.core.packet import DROP, Packet


@pytest.fixture
def interp():
    return Interpreter(exact=True)


class TestPredicateEvaluation:
    def test_primitives(self):
        pk = Packet({"sw": 1})
        assert eval_predicate(s.skip(), pk)
        assert not eval_predicate(s.drop(), pk)
        assert eval_predicate(s.test("sw", 1), pk)
        assert not eval_predicate(s.test("sw", 2), pk)

    def test_connectives(self):
        pk = Packet({"sw": 1, "pt": 2})
        assert eval_predicate(s.conj(s.test("sw", 1), s.test("pt", 2)), pk)
        assert eval_predicate(s.disj(s.test("sw", 9), s.test("pt", 2)), pk)
        assert eval_predicate(s.neg(s.test("sw", 9)), pk)

    def test_non_predicate_rejected(self):
        with pytest.raises(TypeError):
            eval_predicate(s.assign("sw", 1), Packet({}))


class TestBasicPrograms:
    def test_assign_and_test(self, interp):
        assert interp.run_packet(s.assign("f", 1), Packet({"f": 0})) == Dist.point(Packet({"f": 1}))
        assert interp.run_packet(s.test("f", 1), Packet({"f": 0})) == Dist.point(DROP)

    def test_sequence_threads_drop(self, interp):
        policy = s.Seq((s.test("f", 1), s.assign("g", 2)))
        assert interp.run_packet(policy, Packet({"f": 0})) == Dist.point(DROP)

    def test_choice(self, interp):
        policy = s.choice((s.assign("f", 1), Fraction(1, 4)), (s.assign("f", 2), Fraction(3, 4)))
        dist = interp.run_packet(policy, Packet({"f": 0}))
        assert dist(Packet({"f": 1})) == Fraction(1, 4)

    def test_conditional(self, interp):
        policy = s.ite(s.test("f", 0), s.assign("g", 1), s.assign("g", 2))
        assert interp.run_packet(policy, Packet({"f": 0}))(Packet({"f": 0, "g": 1})) == 1

    def test_case_dispatch_on_common_field(self, interp):
        policy = s.case([(s.test("sw", i), s.assign("pt", i * 10)) for i in range(1, 4)], s.drop())
        assert interp.run_packet(policy, Packet({"sw": 2}))(Packet({"sw": 2, "pt": 20})) == 1
        assert interp.run_packet(policy, Packet({"sw": 9})) == Dist.point(DROP)

    def test_case_with_compound_guards_falls_back_to_scan(self, interp):
        policy = s.case(
            [(s.conj(s.test("sw", 1), s.test("pt", 1)), s.assign("ok", 1))], s.assign("ok", 0)
        )
        assert interp.run_packet(policy, Packet({"sw": 1, "pt": 1}))(
            Packet({"sw": 1, "pt": 1, "ok": 1})
        ) == 1

    def test_union_and_star_rejected(self, interp):
        with pytest.raises(GuardedFragmentError):
            interp.run_packet(s.Union((s.assign("f", 1), s.assign("f", 2))), Packet({}))
        with pytest.raises(GuardedFragmentError):
            interp.run_packet(s.star(s.assign("f", 1)), Packet({}))

    def test_run_on_distribution(self, interp):
        inputs = Dist({Packet({"f": 0}): Fraction(1, 2), DROP: Fraction(1, 2)})
        dist = interp.run(s.assign("f", 1), inputs)
        assert dist(Packet({"f": 1})) == Fraction(1, 2)
        assert dist(DROP) == Fraction(1, 2)

    def test_output_distribution_helper_uniform_ingress(self):
        dist = output_distribution(s.assign("f", 1), [Packet({"f": 0}), Packet({"f": 2})])
        assert dist(Packet({"f": 1})) == 1


class TestLoops:
    def test_deterministic_loop(self, interp):
        loop = s.while_do(s.test("f", 0), s.assign("f", 1))
        assert interp.run_packet(loop, Packet({"f": 0})) == Dist.point(Packet({"f": 1}))

    def test_loop_not_entered_when_guard_false(self, interp):
        loop = s.while_do(s.test("f", 0), s.assign("f", 1))
        assert interp.run_packet(loop, Packet({"f": 3})) == Dist.point(Packet({"f": 3}))

    def test_geometric_loop_probability_one(self, interp):
        loop = s.while_do(s.test("f", 0), s.choice((s.assign("f", 1), 0.5), (s.skip(), 0.5)))
        assert interp.run_packet(loop, Packet({"f": 0}))(Packet({"f": 1})) == 1

    def test_divergent_loop_maps_to_drop(self):
        interp = Interpreter(exact=False)
        loop = s.while_do(s.test("f", 0), s.skip())
        dist = interp.run_packet(loop, Packet({"f": 0}))
        assert float(dist(DROP)) == pytest.approx(1.0)

    def test_random_walk_loop(self, interp):
        # Random walk on {0,1,2,3} absorbing at 3 (up w.p. 2/3, down w.p. 1/3).
        body = s.case(
            [
                (s.test("n", i), s.choice((s.assign("n", i + 1), Fraction(2, 3)),
                                          (s.assign("n", max(i - 1, 0)), Fraction(1, 3))))
                for i in (0, 1, 2)
            ],
            s.drop(),
        )
        loop = s.while_do(s.neg(s.test("n", 3)), body)
        dist = interp.run_packet(loop, Packet({"n": 0}))
        assert dist(Packet({"n": 3})) == 1

    def test_loop_solutions_are_cached_across_queries(self, interp):
        loop = s.while_do(s.test("f", 0), s.choice((s.assign("f", 1), 0.5), (s.skip(), 0.5)))
        interp.run_packet(loop, Packet({"f": 0}))
        rows_before = dict(interp._loop_rows[id(loop)])
        interp.run_packet(loop, Packet({"f": 0}))
        assert interp._loop_rows[id(loop)] == rows_before

    def test_state_explosion_guard(self):
        interp = Interpreter(max_loop_states=3)
        body = s.case(
            [(s.test("n", i), s.assign("n", i + 1)) for i in range(10)], s.drop()
        )
        loop = s.while_do(s.neg(s.test("n", 10)), body)
        with pytest.raises(RuntimeError):
            interp.run_packet(loop, Packet({"n": 0}))

    def test_agrees_with_compiler(self):
        from repro.core.compiler import compile_policy
        from repro.core.fdd.node import output_distribution as fdd_out

        loop = s.while_do(
            s.neg(s.test("n", 0)),
            s.case([(s.test("n", i), s.choice((s.assign("n", i - 1), 0.5), (s.skip(), 0.5)))
                    for i in (1, 2)], s.drop()),
        )
        packet = Packet({"n": 2})
        via_interp = Interpreter(exact=True).run_packet(loop, packet)
        via_fdd = fdd_out(compile_policy(loop, exact=True), packet)
        assert via_interp.close_to(via_fdd, tolerance=1e-9)


class TestCertainOutcomes:
    def test_deterministic_program(self, interp):
        outcomes, diverge = interp.certain_outcomes(s.assign("f", 1), Packet({"f": 0}))
        assert outcomes == frozenset({Packet({"f": 1})})
        assert not diverge

    def test_choice_collects_all_branches(self, interp):
        policy = s.choice((s.assign("f", 1), 0.5), (s.drop(), 0.5))
        outcomes, diverge = interp.certain_outcomes(policy, Packet({"f": 0}))
        assert DROP in outcomes and Packet({"f": 1}) in outcomes
        assert not diverge

    def test_terminating_loop_not_divergent(self, interp):
        loop = s.while_do(s.test("f", 0), s.choice((s.assign("f", 1), 0.5), (s.skip(), 0.5)))
        outcomes, diverge = interp.certain_outcomes(loop, Packet({"f": 0}))
        assert outcomes == frozenset({Packet({"f": 1})})
        assert not diverge

    def test_trapped_loop_detected_as_divergent(self, interp):
        loop = s.while_do(s.test("f", 0), s.skip())
        outcomes, diverge = interp.certain_outcomes(loop, Packet({"f": 0}))
        assert diverge
        assert outcomes == frozenset()

    def test_sequence_after_drop_stays_dropped(self, interp):
        policy = s.Seq((s.drop(), s.assign("f", 1)))
        outcomes, _ = interp.certain_outcomes(policy, Packet({}))
        assert outcomes == frozenset({DROP})


class TestIncrementalAbsorption:
    """The per-loop solver re-factorizes only when the chain grows."""

    def walk_loop(self, n: int = 6) -> s.Policy:
        body = s.case(
            [
                (s.test("n", i), s.choice((s.assign("n", i + 1), Fraction(1, 2)),
                                          (s.assign("n", i), Fraction(1, 2))))
                for i in range(n)
            ],
            s.drop(),
        )
        return s.while_do(s.neg(s.test("n", 6)), body)

    def factorizations(self, interp: Interpreter) -> int:
        return interp.loop_stats()["factorizations"]

    def test_repeated_seed_reuses_solve(self):
        interp = Interpreter()
        loop = self.walk_loop()
        interp.run_packet(loop, Packet({"n": 0}))
        count = self.factorizations(interp)
        assert count == 1
        interp.run_packet(loop, Packet({"n": 0}))
        assert self.factorizations(interp) == count

    def test_seed_inside_solved_space_reuses_solve(self):
        interp = Interpreter()
        loop = self.walk_loop()
        interp.run_packet(loop, Packet({"n": 0}))
        count = self.factorizations(interp)
        # n=3 was reached (and solved) while exploring from n=0.
        interp.run_packet(loop, Packet({"n": 3}))
        assert self.factorizations(interp) == count

    def test_growth_factorizes_only_the_new_states(self):
        interp = Interpreter()
        body = s.case(
            [
                (s.test("n", i), s.choice((s.assign("n", i + 1), Fraction(1, 2)),
                                          (s.assign("n", i), Fraction(1, 2))))
                for i in range(6)
            ],
            s.drop(),
        )
        loop = s.while_do(s.neg(s.test("n", 6)), body)
        first = interp.run_packet(loop, Packet({"n": 4}))
        assert self.factorizations(interp) == 1
        solutions = interp._loop_solutions[id(loop)]
        before = {state: dist for state, dist in solutions.items()}
        # A second seed *below* the solved space grows the chain once more;
        # previously solved states keep their (final) solutions untouched.
        second = interp.run_packet(loop, Packet({"n": 0}))
        assert self.factorizations(interp) == 2
        for state, dist in before.items():
            assert solutions[state] is dist
        assert float(first(Packet({"n": 6}))) == pytest.approx(1.0)
        assert float(second(Packet({"n": 6}))) == pytest.approx(1.0)

    def test_incremental_solutions_match_fresh_interpreter(self):
        grown = Interpreter()
        loop = self.walk_loop()
        for start in (4, 2, 0):
            grown.run_packet(loop, Packet({"n": start}))
        fresh = Interpreter()
        fresh_out = fresh.run_packet(loop, Packet({"n": 0}))
        grown_out = grown.run_packet(loop, Packet({"n": 0}))
        assert grown_out.close_to(fresh_out, tolerance=1e-9)
        assert self.factorizations(grown) == 3
        assert self.factorizations(fresh) == 1

    def test_exact_mode_is_incremental_too(self):
        interp = Interpreter(exact=True)
        loop = self.walk_loop()
        out = interp.run_packet(loop, Packet({"n": 4}))
        assert out(Packet({"n": 6})) == 1
        assert self.factorizations(interp) == 1
        interp.run_packet(loop, Packet({"n": 5}))
        assert self.factorizations(interp) == 1


class TestCompiledBodyFastPath:
    """The interpreter's compiled-body exploration agrees with the AST walk."""

    def test_compiled_and_interpreted_loop_agree(self):
        body = s.case(
            [
                (s.test("sw", i), s.choice((s.assign("sw", i + 1), Fraction(9, 10)),
                                           (s.drop(), Fraction(1, 10))))
                for i in range(1, 5)
            ],
            s.drop(),
        )
        loop = s.seq(s.test("sw", 1), s.while_do(s.neg(s.test("sw", 5)), body))
        fast = Interpreter(exact=True)
        slow = Interpreter(exact=True, compile_bodies=False)
        pk = Packet({"sw": 1})
        assert fast.run_packet(loop, pk) == slow.run_packet(loop, pk)
        assert fast.loop_stats()["compiled_loops"] == 1
        assert slow.loop_stats()["compiled_loops"] == 0

    def test_compile_bodies_flag_defaults_on(self):
        assert Interpreter().compile_bodies
        assert not Interpreter(compile_bodies=False).compile_bodies
