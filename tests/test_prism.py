"""Tests for the PRISM backend: automaton, translation, code generation, engine."""

from fractions import Fraction

import pytest

from repro.backends.prism import MiniDtmc, PrismBackend, translate_policy
from repro.backends.prism.automaton import build_automaton
from repro.backends.prism.codegen import predicate_to_prism
from repro.backends.prism.engine import eval_guard
from repro.core import syntax as s
from repro.core.compiler import GuardedFragmentError
from repro.core.fields import FieldTable
from repro.core.interpreter import Interpreter
from repro.core.packet import DROP, Packet
from repro.network import running_example as ex


class TestAutomaton:
    def test_assignment_single_edge(self):
        automaton = build_automaton(s.assign("f", 1))
        assert len(automaton.outgoing(automaton.start)) == 1

    def test_predicate_splits_into_accept_and_reject(self):
        automaton = build_automaton(s.test("f", 1))
        destinations = {edge.dst for edge in automaton.outgoing(automaton.start)}
        assert destinations == {automaton.accept, automaton.reject}

    def test_choice_probabilities_sum_to_one(self):
        automaton = build_automaton(
            s.choice((s.assign("f", 1), Fraction(1, 3)), (s.assign("f", 2), Fraction(2, 3)))
        )
        outgoing = automaton.outgoing(automaton.start)
        assert sum(edge.probability for edge in outgoing) == 1

    def test_while_loop_has_back_edge(self):
        automaton = build_automaton(s.while_do(s.test("f", 0), s.assign("f", 1)))
        # Some state must reach the loop head (the start state) again.
        assert any(edge.dst == automaton.start for edge in automaton.edges if edge.src != automaton.start)

    def test_basic_block_collapsing_reduces_states(self):
        policy = s.seq(*[s.assign(f"x{i}", 1) for i in range(6)])
        automaton = build_automaton(policy)
        # Straight-line code collapses to very few control states.
        assert automaton.state_count <= 4

    def test_union_rejected(self):
        with pytest.raises(GuardedFragmentError):
            build_automaton(s.Union((s.assign("f", 1), s.assign("f", 2))))


class TestTranslation:
    def test_model_is_well_formed(self):
        model = translate_policy(s.ite(s.test("f", 0), s.assign("f", 1), s.drop()))
        model.check_well_formed()
        assert "pc" in model.variable_names()

    def test_field_bounds_cover_mentioned_values(self):
        model = translate_policy(s.assign("f", 7))
        assert model.variable("f").high >= 7

    def test_labels_added(self):
        model = translate_policy(s.assign("f", 1), delivered=s.test("f", 1))
        assert set(model.labels) == {"terminated", "dropped", "delivered"}

    def test_explicit_field_table(self):
        table = FieldTable()
        table.declare("f", 0, 9)
        model = translate_policy(s.assign("f", 1), fields=table)
        assert model.variable("f").high == 9


class TestCodegen:
    def test_source_structure(self):
        backend = PrismBackend()
        source = backend.source(
            s.ite(s.test("f", 0), s.assign("f", 1), s.drop()), delivered=s.test("f", 1)
        )
        assert source.startswith("dtmc")
        assert "module program" in source
        assert 'label "delivered"' in source
        assert "endmodule" in source

    def test_predicate_rendering(self):
        pred = s.conj(s.test("sw", 1), s.neg(s.test("pt", 2)))
        assert predicate_to_prism(pred) == "(sw=1 & !(pt=2))"

    def test_probabilities_rendered_as_fractions(self):
        backend = PrismBackend()
        source = backend.source(
            s.choice((s.assign("f", 1), Fraction(1, 3)), (s.assign("f", 2), Fraction(2, 3)))
        )
        assert "1/3" in source and "2/3" in source


class TestEngine:
    def test_eval_guard(self):
        assert eval_guard(s.test("pc", 3), {"pc": 3})
        assert not eval_guard(s.conj(s.test("pc", 3), s.test("f", 1)), {"pc": 3, "f": 0})

    def test_terminal_distribution_simple_choice(self):
        policy = s.choice((s.assign("f", 1), Fraction(1, 4)), (s.assign("f", 2), Fraction(3, 4)))
        model = translate_policy(policy)
        engine = MiniDtmc(model, exact=True)
        dist = engine.terminal_distribution(overrides={"f": 0})
        prob_f1 = sum(mass for state, mass in dist.items() if dict(state).get("f") == 1)
        assert prob_f1 == Fraction(1, 4)

    def test_probability_of_loop_outcome(self):
        loop = s.while_do(s.test("f", 0), s.choice((s.assign("f", 1), 0.5), (s.skip(), 0.5)))
        backend = PrismBackend(exact=True)
        assert backend.probability(loop, Packet({"f": 0}), s.test("f", 1)) == 1

    def test_dropped_packets_not_counted_as_delivered(self):
        backend = PrismBackend(exact=True)
        prob = backend.probability(s.seq(s.test("f", 1), s.assign("g", 1)), Packet({"f": 0, "g": 0}), s.test("g", 1))
        assert prob == 0


class TestAgainstNativeBackend:
    """The PRISM pipeline and the native interpreter agree on whole models."""

    @pytest.fixture(scope="class")
    def example(self):
        return ex.build()

    @pytest.mark.parametrize("failure", ["f0", "f1", "f2"])
    @pytest.mark.parametrize("scheme", ["naive", "resilient"])
    def test_running_example_delivery_probability(self, example, scheme, failure):
        model = (example.models_naive if scheme == "naive" else example.models_resilient)[failure]
        delivered = s.conj(s.test("sw", 2), s.test("pt", 2))
        native = Interpreter(exact=True).run_packet(model, example.ingress_packet)
        native_prob = native.prob_of(
            lambda o: o is not DROP and o.get("sw") == 2 and o.get("pt") == 2
        )
        prism_prob = PrismBackend(exact=True).probability(
            model, example.ingress_packet, delivered
        )
        assert float(prism_prob) == pytest.approx(float(native_prob), abs=1e-9)

    def test_chain_model_agreement(self):
        from repro.topology import chain_model

        chain = chain_model(2, Fraction(1, 100))
        native = Interpreter(exact=True).run_packet(chain.policy, chain.ingress)
        native_prob = float(
            native.prob_of(lambda o: o is not DROP and o.get("sw") == 8)
        )
        prism_prob = PrismBackend().probability(chain.policy, chain.ingress, chain.delivered)
        assert float(prism_prob) == pytest.approx(native_prob, abs=1e-9)
