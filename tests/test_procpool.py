"""Tests for process-hosted backend replicas (``repro.service.procpool``)
and the manager-independent wire format (``repro.service.wire``)."""

from __future__ import annotations

import threading
import time
from fractions import Fraction

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.analysis.queries import delivery_probability
from repro.backends import MatrixBackend, NativeBackend
from repro.core import syntax as s
from repro.core.distributions import Dist
from repro.core.packet import DROP, Packet
from repro.failure.models import independent_failure_program
from repro.network.model import build_model
from repro.routing import downward_failable_ports, ecmp_policy
from repro.service import AnalysisSession, ProcessBackendPool, Query
from repro.service.cli import main as service_main
from repro.service.wire import (
    QuerySpec,
    ResultSpec,
    dist_from_spec,
    dist_to_spec,
    packet_from_spec,
    packet_to_spec,
)
from repro.topology import edge_switches, fat_tree


def ecmp_model(topo, dest: int):
    failable = downward_failable_ports(topo)
    return build_model(
        topo,
        routing=ecmp_policy(topo, dest),
        dest=dest,
        failure=independent_failure_program(failable, 1 / 1000),
        failable=failable,
    )


@pytest.fixture(scope="module")
def topo():
    return fat_tree(4)


@pytest.fixture(scope="module")
def all_models(topo):
    """One model per edge destination: the full FatTree k=4 query space."""
    return {dest: ecmp_model(topo, dest) for dest in edge_switches(topo)}


@pytest.fixture(scope="module")
def all_pairs(all_models):
    """The 112-pair all-pairs delivery batch of the acceptance criterion."""
    batch = [
        Query.delivery(packet, dest)
        for dest, model in all_models.items()
        for packet in model.ingress_packets
    ]
    assert len(batch) == 112
    return batch


@pytest.fixture(scope="module")
def per_call_values(all_models, all_pairs):
    """Reference answers from per-call ``repro.analysis`` invocations.

    One shared matrix backend keeps the 112 per-call invocations fast;
    each call still goes through the ordinary analysis entry point.
    """
    with MatrixBackend() as backend:
        return [
            delivery_probability(
                all_models[query.dest], inputs=[query.ingress], backend=backend
            )
            for query in all_pairs
        ]


# ---------------------------------------------------------------------------
# Wire format: round trips and exactness
# ---------------------------------------------------------------------------
packet_values = st.dictionaries(
    st.sampled_from(["sw", "pt", "up1", "hops", "detour"]),
    st.integers(min_value=0, max_value=40),
    min_size=1,
    max_size=5,
)
probabilities = st.one_of(
    st.fractions(min_value=0, max_value=1),
    st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
)


class TestWireFormat:
    @given(values=packet_values)
    @settings(max_examples=60, suppress_health_check=[HealthCheck.too_slow])
    def test_packet_round_trip(self, values):
        packet = Packet(values)
        spec = packet_to_spec(packet)
        assert spec == tuple(sorted(values.items()))
        assert packet_from_spec(spec) == packet

    @given(entries=st.lists(st.tuples(packet_values, probabilities), min_size=1, max_size=6))
    @settings(max_examples=60, suppress_health_check=[HealthCheck.too_slow])
    def test_dist_round_trip_preserves_probability_types(self, entries):
        weights: dict = {}
        for values, prob in entries:
            weights[Packet(values)] = weights.get(Packet(values), 0) + prob
        weights[DROP] = Fraction(1, 7)  # drop encodes as None on the wire
        dist = Dist(weights, check=False)
        rebuilt = dist_from_spec(dist_to_spec(dist))
        assert dict(rebuilt.items()) == dict(dist.items())
        for outcome, prob in dist.items():
            (match,) = [p for o, p in rebuilt.items() if o == outcome]
            assert type(match) is type(prob)  # Fraction stays Fraction, float stays float

    @given(values=st.lists(packet_values, min_size=1, max_size=5), plan=st.integers(0, 99))
    @settings(max_examples=40, suppress_health_check=[HealthCheck.too_slow])
    def test_query_spec_round_trip(self, values, plan):
        packets = [Packet(entry) for entry in values]
        spec = QuerySpec.distributions(plan, packets)
        assert spec.kind == "distributions"
        assert spec.plan == plan
        assert spec.ingress_packets() == packets

    def test_result_spec_round_trip(self):
        dists = {
            Packet({"sw": 1, "pt": 2}): Dist(
                {Packet({"sw": 9}): Fraction(1, 3), DROP: Fraction(2, 3)}, check=False
            ),
            Packet({"sw": 4}): Dist({Packet({"sw": 4}): 1.0}, check=False),
        }
        result = ResultSpec.from_distributions(17, dists)
        assert result.plan == 17
        decoded = result.to_distributions()
        assert set(decoded) == set(dists)
        for packet, dist in dists.items():
            assert dict(decoded[packet].items()) == dict(dist.items())


# ---------------------------------------------------------------------------
# ProcessBackendPool: spec-shipped workers
# ---------------------------------------------------------------------------
class TestProcessPool:
    def test_all_pairs_agreement_across_planners(
        self, all_models, all_pairs, per_call_values
    ):
        """The acceptance criterion: the 112-pair batch, three planners.

        Process-pool answers must match the thread pool and per-call
        analysis within 1e-9 under every planner, and the workers must
        have served the whole batch without ever compiling an AST.
        """
        with AnalysisSession(
            models=all_models.values(), pool_size=4, workers=4
        ) as threaded:
            thread_values = threaded.query_batch(all_pairs).values

        for planner in ("destination", "ingress:8", "round-robin:4"):
            with AnalysisSession(
                models=all_models.values(),
                pool_size=4,
                pool_mode="process",
                workers=4,
                planner=planner,
            ) as session:
                served = session.query_batch(all_pairs)
                for value, thread_value, per_call in zip(
                    served.values, thread_values, per_call_values
                ):
                    assert value == pytest.approx(thread_value, abs=1e-9)
                    assert value == pytest.approx(per_call, abs=1e-9)
                # Workers rebuilt every plan from shipped specs only.
                reports = session.pool.worker_reports()
                assert len(reports) == 4
                assert all(report["ast_compilations"] == 0 for report in reports)
                assert sum(report["queries"] for report in reports) >= len(all_pairs)
                # Solver counters cross the process boundary per replica.
                assert all(report["solver"]["factorizations"] >= 1 for report in reports)
                assert all(report["solver"]["assembly_rows"] > 0 for report in reports)

    def test_shards_carry_worker_pids(self, all_models, all_pairs):
        with AnalysisSession(
            models=all_models.values(), pool_size=2, pool_mode="process", workers=2
        ) as session:
            result = session.query_batch(all_pairs)
            pids = {pid for report in result.shards for pid in report.workers}
            # Cross-process evidence: served from >1 worker process, and
            # never from the parent.
            import os

            assert len(pids) > 1
            assert os.getpid() not in pids
            assert all(report.pool_mode == "process" for report in result.shards)
            payload = result.to_json()
            assert all(shard["pool_mode"] == "process" for shard in payload["shards"])
            assert all(shard["workers"] for shard in payload["shards"])

    def test_warm_preplans_every_worker(self, all_models):
        model = next(iter(all_models.values()))
        with AnalysisSession(
            model, pool_size=3, pool_mode="process", workers=3
        ) as session:
            session.warm(model.dest, solve=False)
            reports = session.pool.worker_reports()
            assert all(report["plans"] >= 1 for report in reports)
            assert all(report["ast_compilations"] == 0 for report in reports)
            # The parent planner compiled the policy exactly once.
            assert session.backend.ast_compilations == 1

    def test_exact_fractions_survive_process_boundary(self):
        """A loop-free policy's exact rational answer crosses the wire intact."""
        policy = s.seq(
            s.test("sw", 1),
            s.choice((s.assign("sw", 2), Fraction(1, 3)), (s.assign("sw", 3), Fraction(2, 3))),
        )
        packet = Packet({"sw": 1})
        expected = MatrixBackend().output_distributions(policy, [packet])[packet]
        pool = ProcessBackendPool(MatrixBackend(), size=2, owns_base=True)
        try:
            with pool.lease() as replica:
                served = replica.backend.output_distributions(policy, [packet])[packet]
        finally:
            pool.close()
        assert dict(served.items()) == dict(expected.items())
        for _, prob in served.items():
            assert isinstance(prob, Fraction)

    def test_certainly_delivers_through_worker(self, topo):
        model = build_model(topo, routing=ecmp_policy(topo, 1), dest=1)
        pool = ProcessBackendPool(MatrixBackend(), size=1, owns_base=True)
        try:
            with pool.lease() as replica:
                assert replica.backend.certainly_delivers(model) is True
        finally:
            pool.close()

    def test_close_joins_workers(self, all_models):
        model = next(iter(all_models.values()))
        session = AnalysisSession(model, pool_size=2, pool_mode="process", workers=2)
        session.query_batch([Query.delivery(pk, model.dest) for pk in model.ingress_packets])
        handles = session.pool.workers()
        assert all(handle.alive for handle in handles)
        session.close()
        assert all(not handle.alive for handle in handles)
        with pytest.raises(RuntimeError, match="closed"):
            session.query_batch([Query.delivery(model.ingress_packets[0], model.dest)])

    def test_clear_cache_keep_plans_resets_worker_solver_state(self, all_models):
        model = next(iter(all_models.values()))
        batch = [Query.delivery(pk, model.dest) for pk in model.ingress_packets]
        with AnalysisSession(
            model, pool_size=1, pool_mode="process", workers=1
        ) as session:
            session.query_batch(batch)
            session.clear_cache(keep_plans=True)
            (report,) = session.pool.worker_reports()
            assert report["plans"] == 1  # plans kept...
            second = session.query_batch(batch)  # ...and the batch re-solves
            assert second.cache_hits == 0
            for query, result in zip(batch, second.results):
                assert result.value == pytest.approx(
                    session.query("delivery", query.ingress, query.dest), abs=1e-12
                )

    def test_worker_error_does_not_kill_worker(self):
        pool = ProcessBackendPool(MatrixBackend(), size=1, owns_base=True)
        try:
            with pool.lease() as replica:
                handle = replica.backend
                with pytest.raises(RuntimeError, match="no adopted plan"):
                    handle._request(("query", QuerySpec(999, "distributions", ())))
                assert handle.alive
                assert handle.ping()["pid"] == handle.pid
        finally:
            pool.close()

    def test_native_backend_rejected_for_process_mode(self):
        with pytest.raises(TypeError, match="spec shipping"):
            ProcessBackendPool(NativeBackend(), size=2)

    def test_session_rejects_unknown_pool_mode(self, all_models):
        model = next(iter(all_models.values()))
        with pytest.raises(ValueError, match="pool_mode"):
            AnalysisSession(model, pool_mode="fiber")


# ---------------------------------------------------------------------------
# Teardown ordering: close() drains in-flight shards (process mode)
# ---------------------------------------------------------------------------
class TestProcessTeardown:
    def test_close_during_batch_drains_deterministically(self, all_models, all_pairs):
        """close() racing a query_batch lets the batch finish completely."""
        with AnalysisSession(
            models=all_models.values(), pool_size=2, pool_mode="process", workers=2
        ) as session:
            outcome: dict = {}

            def serve():
                try:
                    outcome["result"] = session.query_batch(all_pairs)
                except Exception as exc:  # pragma: no cover - failure path
                    outcome["error"] = exc

            thread = threading.Thread(target=serve)
            thread.start()
            # Wait until the batch is genuinely in flight (a lease granted),
            # then close out from under it.
            deadline = time.time() + 10.0
            while time.time() < deadline:
                if sum(session.pool.stats()["leases"]) > 0 or not thread.is_alive():
                    break
                time.sleep(0.001)
            session.close()
            thread.join(timeout=30.0)
            assert not thread.is_alive()
            assert "error" not in outcome, f"in-flight batch died: {outcome.get('error')}"
            assert len(outcome["result"]) == len(all_pairs)
            # Workers are joined once the drain completes.
            assert all(not handle.alive for handle in session.pool.workers())


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------
class TestProcessCli:
    def test_pool_mode_process_run(self, tmp_path, capsys):
        out = tmp_path / "results.json"
        code = service_main(
            [
                "--topology",
                "fattree:4",
                "--scheme",
                "ecmp",
                "--dest",
                "1",
                "--dest",
                "2",
                "--all-pairs",
                "--workers",
                "2",
                "--pool-size",
                "2",
                "--pool-mode",
                "process",
                "--output",
                str(out),
            ]
        )
        assert code == 0
        import json
        import os

        payload = json.loads(out.read_text())
        assert payload["queries"] == 28
        assert {shard["replica"] for shard in payload["shards"]} == {0, 1}
        assert all(shard["pool_mode"] == "process" for shard in payload["shards"])
        pids = {pid for shard in payload["shards"] for pid in shard["workers"]}
        assert os.getpid() not in pids
        assert "pool: 2 process-hosted replicas" in capsys.readouterr().out


# ---------------------------------------------------------------------------
# Lifecycle racing worker crashes: close()/resize() with corpses in the pool
# ---------------------------------------------------------------------------
@pytest.mark.chaos
class TestCrashLifecycleRaces:
    def test_close_with_undetected_corpse_is_prompt(self, all_models):
        """close() with a SIGKILLed (never-probed) worker neither hangs
        nor double-joins: the corpse is reaped like any other replica."""
        import os
        import signal

        model = next(iter(all_models.values()))
        session = AnalysisSession(model, pool_size=2, pool_mode="process", workers=1)
        session.warm(model.dest, solve=False)
        victim = session.pool.workers()[1]
        os.kill(victim.pid, signal.SIGKILL)
        victim._process.join(timeout=10.0)
        started = time.monotonic()
        session.close()
        assert time.monotonic() - started < 20.0
        assert all(not handle._process.is_alive() for handle in session.pool.workers())

    def test_resize_retires_crashed_tail(self, all_models):
        """Shrinking over a dead tail replica reaps it without waiting."""
        import os
        import signal

        with AnalysisSession(
            model := next(iter(all_models.values())),
            pool_size=3,
            pool_mode="process",
            workers=1,
            max_attempts=3,
        ) as session:
            session.warm(model.dest, solve=False)
            tail = session.pool.workers()[2]
            os.kill(tail.pid, signal.SIGKILL)
            tail._process.join(timeout=10.0)
            assert session.resize_pool(1) == 1
            assert [replica.index for replica in session.pool.replicas] == [0]
            # The survivor still answers.
            batch = [Query.delivery(p, model.dest) for p in model.ingress_packets]
            result = session.query_batch(batch)
            assert len(result) == len(batch)

    def test_close_races_inflight_crash_and_respawn(self, all_models, all_pairs):
        """Killing a busy worker and closing immediately afterwards must
        terminate cleanly: the drain, the respawn thread, and the worker
        joins all resolve without hanging or double-joining."""
        import os
        import signal

        session = AnalysisSession(
            models=all_models.values(),
            pool_size=2,
            pool_mode="process",
            workers=2,
            max_attempts=3,
        )
        outcome: dict = {}

        def serve():
            try:
                outcome["result"] = session.query_batch(all_pairs)
            except Exception as exc:
                outcome["error"] = exc

        thread = threading.Thread(target=serve)
        thread.start()
        # Wait for a busy worker, kill it, then close out from under the
        # in-flight batch while the supervision machinery is reacting.
        deadline = time.monotonic() + 30.0
        while time.monotonic() < deadline and thread.is_alive():
            busy = [r for r in session.pool.replicas if r.busy and r.health == "healthy"]
            if busy:
                os.kill(busy[0].backend.pid, signal.SIGKILL)
                break
            time.sleep(0.0005)
        session.close()
        thread.join(timeout=60.0)
        assert not thread.is_alive()
        # The batch either completed through the drain or failed typed —
        # never a hang, and every worker is joined.
        if "error" in outcome:
            assert isinstance(outcome["error"], RuntimeError)
        else:
            assert len(outcome["result"]) == len(all_pairs)
        assert all(not handle._process.is_alive() for handle in session.pool.workers())
