"""Tests for the CI benchmark gate (``benchmarks/check_regression.py``):
per-metric direction support and required-metric enforcement."""

from __future__ import annotations

import importlib.util
import json
import pathlib

import pytest

_SCRIPT = (
    pathlib.Path(__file__).resolve().parent.parent / "benchmarks" / "check_regression.py"
)


@pytest.fixture(scope="module")
def gate():
    spec = importlib.util.spec_from_file_location("check_regression", _SCRIPT)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


@pytest.fixture()
def write_json(tmp_path):
    def write(name: str, metrics: dict) -> str:
        path = tmp_path / name
        path.write_text(json.dumps({"metrics": metrics}), encoding="utf-8")
        return str(path)

    return write


def run_gate(gate, write_json, current, baseline, *extra) -> int:
    return gate.main(
        [
            "--current",
            write_json("current.json", current),
            "--baseline",
            write_json("baseline.json", baseline),
            *extra,
        ]
    )


class TestHigherIsBetter:
    def test_within_tolerance_passes(self, gate, write_json):
        assert run_gate(gate, write_json, {"qps": 80.0}, {"qps": 100.0}) == 0

    def test_below_floor_fails(self, gate, write_json):
        assert run_gate(gate, write_json, {"qps": 69.0}, {"qps": 100.0}) == 1

    def test_improvement_never_fails(self, gate, write_json):
        assert run_gate(gate, write_json, {"qps": 500.0}, {"qps": 100.0}) == 0

    def test_missing_baselined_metric_fails(self, gate, write_json):
        assert run_gate(gate, write_json, {"other": 1.0}, {"qps": 100.0}) == 1


class TestLowerIsBetter:
    def test_direction_in_baseline_entry(self, gate, write_json):
        baseline = {"p99_ms": {"value": 100.0, "direction": "lower_is_better"}}
        # 120 <= 130 (the 30% ceiling): within tolerance.
        assert run_gate(gate, write_json, {"p99_ms": 120.0}, baseline) == 0
        # 131 > 130: a latency regression fails.
        assert run_gate(gate, write_json, {"p99_ms": 131.0}, baseline) == 1
        # An improvement (lower latency) never fails.
        assert run_gate(gate, write_json, {"p99_ms": 5.0}, baseline) == 0

    def test_direction_via_flag(self, gate, write_json):
        args = ("--lower-is-better", "p99_ms")
        assert run_gate(gate, write_json, {"p99_ms": 120.0}, {"p99_ms": 100.0}, *args) == 0
        assert run_gate(gate, write_json, {"p99_ms": 131.0}, {"p99_ms": 100.0}, *args) == 1

    def test_without_direction_high_latency_would_pass(self, gate, write_json):
        """The failure mode direction support exists for: without it, a
        latency blow-up looks like an 'improvement' and passes."""
        assert run_gate(gate, write_json, {"p99_ms": 10000.0}, {"p99_ms": 100.0}) == 0

    def test_explicit_higher_is_better_entry(self, gate, write_json):
        baseline = {"qps": {"value": 100.0, "direction": "higher_is_better"}}
        assert run_gate(gate, write_json, {"qps": 80.0}, baseline) == 0
        assert run_gate(gate, write_json, {"qps": 60.0}, baseline) == 1

    def test_unknown_direction_rejected(self, gate, write_json):
        baseline = {"qps": {"value": 100.0, "direction": "sideways"}}
        with pytest.raises(SystemExit):
            run_gate(gate, write_json, {"qps": 100.0}, baseline)


class TestRequire:
    def test_missing_required_metric_fails(self, gate, write_json):
        assert (
            run_gate(gate, write_json, {"qps": 1.0}, {}, "--require", "p99_ms") == 1
        )

    def test_present_required_metric_passes(self, gate, write_json):
        assert (
            run_gate(
                gate,
                write_json,
                {"qps": 1.0, "p99_ms": 5.0},
                {},
                "--require",
                "qps",
                "--require",
                "p99_ms",
            )
            == 0
        )

    def test_require_fails_even_with_empty_baseline(self, gate, write_json):
        """--require guards against a harness change silently dropping the
        gated metric: it fails even when the baseline gates nothing."""
        assert run_gate(gate, write_json, {}, {}, "--require", "qps") == 1

    def test_empty_baseline_without_require_passes(self, gate, write_json):
        assert run_gate(gate, write_json, {"anything": 1.0}, {}) == 0


class TestTolerance:
    def test_custom_tolerance(self, gate, write_json):
        args = ("--tolerance", "0.5")
        assert run_gate(gate, write_json, {"qps": 51.0}, {"qps": 100.0}, *args) == 0
        assert run_gate(gate, write_json, {"qps": 49.0}, {"qps": 100.0}, *args) == 1
