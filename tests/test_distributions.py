"""Unit and property tests for finite probability distributions."""

from fractions import Fraction

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.distributions import Dist


class TestConstruction:
    def test_point_mass(self):
        d = Dist.point("a")
        assert d("a") == 1
        assert d("b") == 0
        assert d.support() == frozenset({"a"})

    def test_uniform(self):
        d = Dist.uniform(["a", "b", "c", "d"])
        assert d("a") == Fraction(1, 4)
        assert d.total_mass() == 1

    def test_uniform_empty_rejected(self):
        with pytest.raises(ValueError):
            Dist.uniform([])

    def test_duplicate_outcomes_merge(self):
        d = Dist([("a", Fraction(1, 2)), ("a", Fraction(1, 2))])
        assert d("a") == 1

    def test_zero_mass_removed_from_support(self):
        d = Dist({"a": 1, "b": 0})
        assert d.support() == frozenset({"a"})

    def test_negative_mass_rejected(self):
        with pytest.raises(ValueError):
            Dist({"a": Fraction(-1, 2), "b": Fraction(3, 2)})

    def test_mass_must_sum_to_one_when_checked(self):
        with pytest.raises(ValueError):
            Dist({"a": Fraction(1, 2)})
        Dist({"a": Fraction(1, 2)}, check=False)  # sub-distributions allowed

    def test_booleans_rejected(self):
        with pytest.raises(TypeError):
            Dist({"a": True})

    def test_convex_combination(self):
        d = Dist.convex([(Dist.point("a"), Fraction(1, 3)), (Dist.point("b"), Fraction(2, 3))])
        assert d("a") == Fraction(1, 3)
        assert d("b") == Fraction(2, 3)


class TestQueries:
    def test_prob_of_predicate(self):
        d = Dist.uniform([1, 2, 3, 4])
        assert d.prob_of(lambda x: x % 2 == 0) == Fraction(1, 2)

    def test_expectation(self):
        d = Dist({1: Fraction(1, 2), 3: Fraction(1, 2)})
        assert d.expectation(lambda x: x) == pytest.approx(2.0)

    def test_total_mass(self):
        assert Dist.uniform("abc").total_mass() == 1

    def test_normalise(self):
        d = Dist({"a": Fraction(1, 4), "b": Fraction(1, 4)}, check=False)
        assert d.normalise()("a") == Fraction(1, 2)

    def test_normalise_zero_rejected(self):
        with pytest.raises(ValueError):
            Dist({}, check=False).normalise()


class TestMonad:
    def test_map_merges_collisions(self):
        d = Dist.uniform([1, 2, 3, 4]).map(lambda x: x % 2)
        assert d(0) == Fraction(1, 2)
        assert d(1) == Fraction(1, 2)

    def test_bind(self):
        d = Dist.uniform([0, 1]).bind(lambda x: Dist.uniform([x, x + 10]))
        assert d(0) == Fraction(1, 4)
        assert d(11) == Fraction(1, 4)

    def test_bind_preserves_total_mass(self):
        d = Dist.uniform([0, 1]).bind(lambda x: Dist.point(x * 2))
        assert d.total_mass() == 1

    def test_product(self):
        d = Dist.uniform([0, 1]).product(Dist.uniform(["a", "b"]))
        assert d((0, "a")) == Fraction(1, 4)

    def test_monad_left_identity(self):
        kernel = lambda x: Dist.uniform([x, x + 1])  # noqa: E731
        assert Dist.point(3).bind(kernel) == kernel(3)

    def test_monad_right_identity(self):
        d = Dist.uniform([1, 2, 3])
        assert d.bind(Dist.point) == d


class TestComparisons:
    def test_equality_exact(self):
        assert Dist({"a": Fraction(1, 2), "b": Fraction(1, 2)}) == Dist(
            {"b": Fraction(1, 2), "a": Fraction(1, 2)}
        )

    def test_close_to_with_floats(self):
        a = Dist({"a": 0.5, "b": 0.5})
        b = Dist({"a": 0.5 + 1e-12, "b": 0.5 - 1e-12})
        assert a.close_to(b)

    def test_tv_distance(self):
        a = Dist.point("a")
        b = Dist.point("b")
        assert a.tv_distance(b) == pytest.approx(1.0)

    def test_dominated_by_with_ignored_outcome(self):
        a = Dist({"x": Fraction(1, 2), "drop": Fraction(1, 2)})
        b = Dist({"x": Fraction(3, 4), "drop": Fraction(1, 4)})
        assert a.dominated_by(b, ignore=frozenset({"drop"}))
        assert not b.dominated_by(a, ignore=frozenset({"drop"}))

    def test_with_floats_and_fractions(self):
        d = Dist({"a": Fraction(1, 3), "b": Fraction(2, 3)})
        floats = d.with_floats()
        assert isinstance(floats("a"), float)
        back = floats.with_fractions(limit_denominator=100)
        assert back("a") == Fraction(1, 3)


@given(
    st.lists(
        st.tuples(st.integers(0, 5), st.fractions(min_value=0, max_value=1)),
        min_size=1,
        max_size=8,
    )
)
def test_map_preserves_total_mass(pairs):
    d = Dist(pairs, check=False)
    assert d.map(lambda x: x % 2).total_mass() == d.total_mass()


@given(st.lists(st.integers(0, 20), min_size=1, max_size=10))
def test_uniform_is_a_probability_distribution(outcomes):
    d = Dist.uniform(outcomes)
    assert d.total_mass() == 1
    assert all(mass > 0 for _, mass in d.items())
