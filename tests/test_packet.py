"""Unit tests for packets, the drop sentinel, and packet universes."""

import pickle

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.packet import DROP, Packet, PacketUniverse, _DropType


class TestPacket:
    def test_field_access(self):
        pk = Packet({"sw": 1, "pt": 2})
        assert pk["sw"] == 1
        assert pk.get("pt") == 2
        assert pk.get("missing") is None

    def test_missing_field_raises(self):
        with pytest.raises(KeyError):
            Packet({"sw": 1})["pt"]

    def test_set_returns_new_packet(self):
        pk = Packet({"sw": 1})
        updated = pk.set("sw", 2)
        assert updated["sw"] == 2
        assert pk["sw"] == 1

    def test_set_many(self):
        pk = Packet({"sw": 1}).set_many({"pt": 2, "sw": 3})
        assert pk.as_dict() == {"sw": 3, "pt": 2}

    def test_equality_is_structural(self):
        assert Packet({"a": 1, "b": 2}) == Packet({"b": 2, "a": 1})
        assert hash(Packet({"a": 1})) == hash(Packet({"a": 1}))

    def test_test_missing_field_is_false(self):
        assert not Packet({"sw": 1}).test("pt", 2)
        assert Packet({"sw": 1}).test("sw", 1)

    def test_restrict(self):
        pk = Packet({"sw": 1, "pt": 2, "up": 1})
        assert pk.restrict(["sw", "pt"]).as_dict() == {"sw": 1, "pt": 2}

    def test_rejects_non_integer_values(self):
        with pytest.raises(TypeError):
            Packet({"sw": "one"})
        with pytest.raises(TypeError):
            Packet({"sw": True})

    def test_iteration_and_len(self):
        pk = Packet({"b": 2, "a": 1})
        assert list(pk) == ["a", "b"]
        assert len(pk) == 2
        assert "a" in pk

    def test_pickle_roundtrip(self):
        pk = Packet({"sw": 5, "pt": 3})
        assert pickle.loads(pickle.dumps(pk)) == pk

    @given(st.dictionaries(st.sampled_from(["a", "b", "c"]), st.integers(0, 10)))
    def test_as_dict_roundtrip(self, fields):
        assert Packet(fields).as_dict() == fields


class TestDrop:
    def test_singleton(self):
        assert _DropType() is DROP

    def test_pickle_preserves_singleton(self):
        assert pickle.loads(pickle.dumps(DROP)) is DROP

    def test_equality_and_hash(self):
        assert DROP == _DropType()
        assert hash(DROP) == hash(_DropType())
        assert DROP != Packet({})


class TestPacketUniverse:
    def test_enumeration(self):
        u = PacketUniverse({"f": [0, 1], "g": [0, 1, 2]})
        assert u.size == 6
        assert len(list(u)) == 6

    def test_contains(self):
        u = PacketUniverse({"f": [0, 1]})
        assert Packet({"f": 1}) in u
        assert Packet({"f": 5}) not in u
        assert Packet({"f": 1, "g": 0}) not in u

    def test_empty_domain_rejected(self):
        with pytest.raises(ValueError):
            PacketUniverse({"f": []})

    def test_subsets_count(self):
        u = PacketUniverse({"f": [0, 1]})
        assert len(list(u.subsets())) == 4

    def test_subsets_refuses_large_universe(self):
        u = PacketUniverse({"f": list(range(20))})
        with pytest.raises(ValueError):
            list(u.subsets())

    def test_domains_sorted_and_deduplicated(self):
        u = PacketUniverse({"f": [2, 1, 1]})
        assert u.domains == {"f": (1, 2)}
