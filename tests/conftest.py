"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.core import syntax as s
from repro.core.packet import Packet, PacketUniverse
from repro.network import running_example


@pytest.fixture(scope="session")
def tiny_universe() -> PacketUniverse:
    """A two-field universe small enough for the reference semantics."""
    return PacketUniverse({"f": [0, 1], "g": [0, 1]})


@pytest.fixture(scope="session")
def running_example_bundle() -> running_example.RunningExample:
    """The §2 running example (naive/resilient schemes under f0/f1/f2)."""
    return running_example.build()


@pytest.fixture(scope="session")
def ab_fattree_4():
    """The p=4 AB FatTree used throughout the §7 case study."""
    from repro.topology import ab_fat_tree

    return ab_fat_tree(4)


@pytest.fixture(scope="session")
def fattree_4():
    from repro.topology import fat_tree

    return fat_tree(4)


@pytest.fixture
def coin() -> s.Policy:
    """A fair coin flip over field ``f``."""
    return s.choice((s.assign("f", 0), 0.5), (s.assign("f", 1), 0.5))


@pytest.fixture
def ingress_packet() -> Packet:
    return Packet({"sw": 1, "pt": 1})


@pytest.fixture
def inject_faults(monkeypatch):
    """Activate a ``REPRO_FAULTS`` fault-injection plan for worker processes.

    Workers read the variable once at process start, so the plan must be
    injected *before* building the pool (or session) whose workers it
    targets; a worker respawned at the same index re-reads the same
    plan.  Accepts either a spec string (``"kill@1:after=3"``) or a
    :class:`repro.service.FaultPlan`.  ``monkeypatch`` restores the
    environment after the test.
    """

    def _inject(plan) -> str:
        from repro.service import faults

        spec = plan if isinstance(plan, str) else plan.spec()
        monkeypatch.setenv(faults.REPRO_FAULTS, spec)
        return spec

    return _inject
