"""Tests for the sharded query service (``repro.service``)."""

from __future__ import annotations

import json
import re

import pytest

from repro.analysis import (
    expected_value,
    hop_count_cdf,
    output_distribution,
    resilience_table,
)
from repro.analysis.queries import delivery_probability
from repro.core.packet import Packet
from repro.failure.models import independent_failure_program
from repro.network.model import build_model
from repro.routing import downward_failable_ports, ecmp_policy
from repro.service import (
    AnalysisSession,
    ByDestinationPlanner,
    ByIngressBlockPlanner,
    Query,
    ResultSet,
    RoundRobinPlanner,
    Shard,
    ShardExecutor,
    get_planner,
    validate_partition,
)
from repro.service.cli import main as service_main
from repro.topology import fat_tree


def ecmp_model(topo, dest: int, failure_probability: float | None = 1 / 1000,
               count_hops: bool = False):
    failable = downward_failable_ports(topo) if failure_probability else None
    failure = (
        independent_failure_program(failable, failure_probability)
        if failure_probability
        else None
    )
    return build_model(
        topo,
        routing=ecmp_policy(topo, dest),
        dest=dest,
        failure=failure,
        failable=failable,
        count_hops=count_hops,
    )


@pytest.fixture(scope="module")
def topo():
    return fat_tree(4)


@pytest.fixture(scope="module")
def models(topo):
    return {dest: ecmp_model(topo, dest) for dest in (1, 2)}


@pytest.fixture(scope="module")
def all_pairs(models):
    return [
        Query.delivery(packet, dest)
        for dest, model in models.items()
        for packet in model.ingress_packets
    ]


# ---------------------------------------------------------------------------
# Shard planners
# ---------------------------------------------------------------------------
class TestPlanners:
    def batch(self) -> list[Query]:
        queries = [
            Query.delivery((sw, pt), dest)
            for dest in (1, 2, 3)
            for sw in (5, 6, 7)
            for pt in (1, 2)
        ]
        # A duplicate occurrence must survive partitioning too.
        queries.append(queries[0])
        return queries

    @pytest.mark.parametrize(
        "planner",
        [
            ByDestinationPlanner(),
            ByIngressBlockPlanner(block_size=4),
            ByIngressBlockPlanner(block_size=1),
            RoundRobinPlanner(shards=4),
            RoundRobinPlanner(shards=100),
        ],
        ids=["dest", "ingress4", "ingress1", "rr4", "rr100"],
    )
    def test_partitions_exactly(self, planner):
        queries = self.batch()
        shards = planner.plan(queries)
        validate_partition(queries, shards)  # raises on loss/duplication
        assert sum(len(shard) for shard in shards) == len(queries)
        assert all(shard.queries for shard in shards)
        assert [shard.index for shard in shards] == list(range(len(shards)))

    def test_by_destination_groups(self):
        shards = ByDestinationPlanner().plan(self.batch())
        for shard in shards:
            assert len({query.dest for query in shard.queries}) == 1

    def test_ingress_blocks_bound_size_and_dest(self):
        shards = ByIngressBlockPlanner(block_size=4).plan(self.batch())
        for shard in shards:
            assert len(shard) <= 4
            assert len({query.dest for query in shard.queries}) == 1

    def test_round_robin_uses_exact_shard_count(self):
        queries = self.batch()
        shards = RoundRobinPlanner(shards=4).plan(queries)
        assert len(shards) == 4
        sizes = [len(shard) for shard in shards]
        assert max(sizes) - min(sizes) <= 1

    def test_get_planner_specs(self):
        assert isinstance(get_planner(None), ByDestinationPlanner)
        assert isinstance(get_planner("destination"), ByDestinationPlanner)
        assert get_planner("ingress:32").block_size == 32
        assert get_planner("round-robin:8").shards == 8
        planner = RoundRobinPlanner(shards=2)
        assert get_planner(planner) is planner
        with pytest.raises(ValueError, match="unknown shard planner"):
            get_planner("fibonacci")
        with pytest.raises(ValueError, match="must be an integer"):
            get_planner("ingress:many")

    def test_validate_partition_catches_loss_and_duplication(self):
        queries = self.batch()
        shards = ByDestinationPlanner().plan(queries)
        with pytest.raises(ValueError, match="lost"):
            validate_partition(queries + [Query.delivery((9, 9), 9)], shards)
        broken = list(shards) + [Shard(len(shards), "dup", (queries[0],))]
        with pytest.raises(ValueError, match="duplicated"):
            validate_partition(queries, broken)


# ---------------------------------------------------------------------------
# Executor
# ---------------------------------------------------------------------------
class TestShardExecutor:
    def test_map_preserves_order(self):
        with ShardExecutor(workers=4) as executor:
            assert executor.map(lambda x: x * x, list(range(20))) == [
                x * x for x in range(20)
            ]

    def test_pool_is_persistent_and_lazy(self):
        executor = ShardExecutor(workers=2)
        assert not executor.started
        executor.map(lambda x: x, [1])  # single item: runs inline
        assert not executor.started
        executor.map(lambda x: x, [1, 2, 3])
        assert executor.started
        pool = executor._pool
        executor.map(lambda x: x, [4, 5, 6])
        assert executor._pool is pool  # reused, not restarted
        executor.close()
        assert not executor.started
        with pytest.raises(RuntimeError, match="closed"):
            executor.map(lambda x: x, [1, 2])

    def test_sequential_mode_never_starts_a_pool(self):
        executor = ShardExecutor(workers=1)
        assert executor.map(lambda x: -x, [1, 2, 3]) == [-1, -2, -3]
        assert not executor.started
        executor.close()


# ---------------------------------------------------------------------------
# Sessions: agreement with the single-threaded analysis entry points
# ---------------------------------------------------------------------------
class TestSessionAgreement:
    @pytest.mark.parametrize("backend", ["matrix", "native"])
    @pytest.mark.parametrize("planner", ["destination", "ingress:4", "round-robin:3"])
    def test_concurrent_batch_matches_per_call_analysis(
        self, models, all_pairs, backend, planner
    ):
        with AnalysisSession(
            models=models.values(), backend=backend, planner=planner, workers=4
        ) as session:
            results = session.query_batch(all_pairs)
            assert len(results) == len(all_pairs)
            for result in results:
                model = models[result.query.dest]
                expected = delivery_probability(
                    model, inputs=[result.query.ingress]
                )
                assert result.value == pytest.approx(expected, abs=1e-9)

    def test_distribution_and_hops_kinds(self, topo):
        model = ecmp_model(topo, 1, count_hops=True)
        with AnalysisSession(model, workers=2) as session:
            packet = model.ingress_packets[0]
            dist = session.query("distribution", packet)
            reference = output_distribution(model, inputs=[packet])
            assert dist.close_to(reference, tolerance=1e-9)
            hops = session.query("hops", packet)
            expected = expected_value(
                reference,
                value=lambda out: out.get(model.hops_field),
                condition=lambda out: out.get("sw") == model.dest,
            )
            assert hops == pytest.approx(expected, abs=1e-9)

    def test_hops_requires_counter(self, models):
        with AnalysisSession(models[1], workers=1) as session:
            with pytest.raises(ValueError, match="count_hops=True"):
                session.query("hops", models[1].ingress_packets[0])

    def test_query_coercion_forms(self, models):
        model = models[1]
        sw, pt = model.ingress_packets[0].get("sw"), model.ingress_packets[0].get("pt")
        with AnalysisSession(model, workers=1) as session:
            via_tuple = session.query("delivery", (sw, pt), 1)
            via_packet = session.query("delivery", Packet({"sw": sw, "pt": pt}), 1)
            via_default = session.query("delivery", {"sw": sw, "pt": pt})
            assert via_tuple == via_packet == via_default

    def test_delivery_honors_model_predicate(self, models):
        # A model with a stricter delivered-predicate than sw == dest:
        # the session must follow it, exactly like delivery_probability.
        import dataclasses

        from repro.core import syntax as s

        model = models[1]
        strict = dataclasses.replace(
            model, delivered=s.conj(model.delivered, s.test("pt", 1))
        )
        packet = model.ingress_packets[0]
        with AnalysisSession(strict, workers=1) as session:
            served = session.query("delivery", packet, 1)
        expected = delivery_probability(strict, inputs=[packet])
        assert served == pytest.approx(expected, abs=1e-9)
        # pt is erased to 0 at egress, so the strict predicate never holds —
        # a hardcoded sw == dest check would wrongly report ~1.0 here.
        assert served == pytest.approx(0.0, abs=1e-9)

    def test_delivery_probabilities_matches_model(self, models):
        model = models[1]
        with AnalysisSession(model, workers=2) as session:
            served = session.delivery_probabilities()
        direct = model.delivery_probabilities()
        assert set(served) == set(direct)
        for packet, probability in direct.items():
            assert served[packet] == pytest.approx(probability, abs=1e-9)


# ---------------------------------------------------------------------------
# Sessions: caching
# ---------------------------------------------------------------------------
class TestSessionCache:
    def test_repeated_batches_hit_cache(self, models, all_pairs):
        with AnalysisSession(models=models.values(), workers=1) as session:
            first = session.query_batch(all_pairs)
            assert first.cache_hits == 0
            second = session.query_batch(all_pairs)
            assert second.cache_hits == len(all_pairs)
            assert second.values == first.values
            # Per-shard reports agree with the batch totals.
            assert sum(report.cache_hits for report in second.shards) == len(all_pairs)

    def test_overlapping_batch_hits_partially(self, models, all_pairs):
        with AnalysisSession(models=models.values(), workers=1) as session:
            half = all_pairs[: len(all_pairs) // 2]
            session.query_batch(half)
            full = session.query_batch(all_pairs)
            assert full.cache_hits == len(half)

    def test_kinds_share_one_distribution_entry(self, models):
        model = models[1]
        packet = model.ingress_packets[0]
        with AnalysisSession(model, workers=1) as session:
            session.query("distribution", packet)
            # A different kind on the same pair reuses the cached distribution.
            result = session.query_batch([Query.delivery(packet, model.dest)])
            assert result.cache_hits == 1

    def test_clear_cache(self, models, all_pairs):
        with AnalysisSession(models=models.values(), workers=1) as session:
            session.query_batch(all_pairs)
            session.clear_cache()
            again = session.query_batch(all_pairs)
            assert again.cache_hits == 0

    def test_cache_disabled(self, models, all_pairs):
        with AnalysisSession(models=models.values(), workers=1, cache=False) as session:
            session.query_batch(all_pairs)
            again = session.query_batch(all_pairs)
            assert again.cache_hits == 0

    def test_canonical_key_shares_entries_across_equal_models(self, topo):
        # Two separately built (distinct-object, semantically equal) models:
        # the canonical-FDD key makes the second model's batch a pure cache hit.
        first = ecmp_model(topo, 1)
        second = ecmp_model(topo, 1)
        assert first.policy is not second.policy
        with AnalysisSession(first, workers=1) as session:
            session.query_batch(
                [Query.delivery(packet, 1) for packet in first.ingress_packets]
            )
            session.add_model(second, default=True)
            results = session.query_batch(
                [Query.delivery(packet, None) for packet in second.ingress_packets]
            )
            assert results.cache_hits == len(second.ingress_packets)

    def test_duplicate_queries_in_one_batch(self, models):
        model = models[1]
        packet = model.ingress_packets[0]
        batch = [Query.delivery(packet, 1)] * 3
        with AnalysisSession(model, workers=1) as session:
            results = session.query_batch(batch)
            assert len(results) == 3
            assert len({result.value for result in results}) == 1


# ---------------------------------------------------------------------------
# Sessions: analysis entry-point integration (session=)
# ---------------------------------------------------------------------------
class TestAnalysisIntegration:
    def test_output_distribution_session_kwarg(self, models):
        model = models[1]
        with AnalysisSession(model, workers=1) as session:
            packet = model.ingress_packets[0]
            via_session = output_distribution(model, inputs=[packet], session=session)
            direct = output_distribution(model, inputs=[packet])
            assert via_session.close_to(direct, tolerance=1e-9)

    def test_backend_and_session_conflict(self, models):
        model = models[1]
        with AnalysisSession(model, workers=1) as session:
            with pytest.raises(ValueError, match="not both"):
                output_distribution(
                    model,
                    inputs=[model.ingress_packets[0]],
                    backend="matrix",
                    session=session,
                )

    def test_hop_cdf_session_kwarg(self, topo):
        model = ecmp_model(topo, 1, count_hops=True)
        with AnalysisSession(model, workers=1) as session:
            via_session = hop_count_cdf(model, max_hops=8, session=session)
        assert via_session == pytest.approx(hop_count_cdf(model, max_hops=8), abs=1e-9)

    def test_resilience_table_session_kwarg(self, topo):
        def factory(scheme, bound):
            return ecmp_model(topo, 1, failure_probability=None)

        with AnalysisSession(model_factory=lambda dest: ecmp_model(topo, dest)) as session:
            table = resilience_table(factory, ["ecmp"], [0], session=session)
            reference = resilience_table(factory, ["ecmp"], [0])
        assert table == reference

    def test_resilience_sweep_caches_verdicts(self, topo):
        built = []

        def factory(scheme, bound):
            model = ecmp_model(topo, 1, failure_probability=None)
            built.append(model)
            return model

        with AnalysisSession(model_factory=lambda dest: ecmp_model(topo, dest)) as session:
            sweep = session.resilience_sweep(factory, ["ecmp"], [0, 1])
        assert sweep == {"ecmp": {0: True, 1: True}}

    def test_lazy_reexport(self):
        import repro.analysis as analysis

        assert analysis.AnalysisSession is AnalysisSession
        with pytest.raises(AttributeError):
            analysis.NoSuchThing


# ---------------------------------------------------------------------------
# Session lifecycle and result sets
# ---------------------------------------------------------------------------
class TestLifecycleAndResults:
    def test_closed_session_rejects_queries(self, models):
        session = AnalysisSession(models[1], workers=1)
        session.close()
        with pytest.raises(RuntimeError, match="closed"):
            session.query_batch([Query.delivery(models[1].ingress_packets[0], 1)])
        # The engine-protocol surfaces refuse too: a closed session must
        # not silently restart resources close() released.
        with pytest.raises(RuntimeError, match="closed"):
            session.output_distribution(models[1], models[1].ingress_packets[0])
        with pytest.raises(RuntimeError, match="closed"):
            session.certainly_delivers(models[1])
        with pytest.raises(RuntimeError, match="closed"):
            session.warm()
        session.close()  # idempotent

    def test_unknown_destination(self, models):
        with AnalysisSession(models[1], workers=1) as session:
            with pytest.raises(KeyError, match="no model for destination"):
                session.model_for(99)

    def test_default_requires_explicit_registration(self, topo):
        # Factory-built models never self-promote to the session default:
        # dest=None stays an error until a default is registered explicitly.
        with AnalysisSession(model_factory=lambda d: ecmp_model(topo, d)) as session:
            built = session.model_for(2)
            with pytest.raises(KeyError, match="no default model"):
                session.model_for(None)
            session.add_model(built, default=True)
            assert session.model_for(None) is built

    def test_close_only_tears_down_owned_backends(self, models):
        from repro.backends import NativeBackend

        shared = NativeBackend()
        closes: list[int] = []
        shared.close = lambda: closes.append(1)  # type: ignore[method-assign]
        with AnalysisSession(models[1], backend=shared, workers=1) as session:
            session.query_batch([Query.delivery(models[1].ingress_packets[0], 1)])
        assert closes == []  # caller-supplied instance: caller closes it

        owned = AnalysisSession(models[1], backend="native", workers=1)
        assert owned._owns_backend
        owned.close()

    def test_close_drains_slow_inflight_shard(self, models):
        """Regression: close() racing a batch must drain it, not poison it.

        ``close()`` used to flip ``_closed`` *before* draining the
        executor, so a shard that had not yet reached ``_distributions``
        when the flag flipped died with "session is closed" and the whole
        in-flight ``query_batch`` failed nondeterministically.  Teardown
        now rejects new batches first, runs every in-flight shard to
        completion, and only then tears the pool down.
        """
        import threading as _threading

        from repro.backends import MatrixBackend

        class SlowBackend(MatrixBackend):
            started = _threading.Event()
            release = _threading.Event()

            def output_distributions(self, policy, inputs):
                self.started.set()
                # The first shard stalls mid-lease until close() has begun.
                self.release.wait(timeout=10.0)
                return super().output_distributions(policy, inputs)

        backend = SlowBackend()
        # workers=1 runs shards inline — the hardest drain case, because the
        # executor has no thread pool close() could wait on.
        session = AnalysisSession(
            models=models.values(), backend=backend, pool_size=1, workers=1
        )
        batch = [
            Query.delivery(packet, dest)
            for dest, model in models.items()
            for packet in model.ingress_packets
        ]
        outcome: dict = {}

        def serve():
            try:
                outcome["result"] = session.query_batch(batch)
            except Exception as exc:
                outcome["error"] = exc

        thread = _threading.Thread(target=serve)
        thread.start()
        assert SlowBackend.started.wait(timeout=10.0)
        closer = _threading.Thread(target=session.close)
        closer.start()
        # close() is now committed to the drain; let the slow shard go.
        SlowBackend.release.set()
        thread.join(timeout=30.0)
        closer.join(timeout=30.0)
        assert not thread.is_alive() and not closer.is_alive()
        assert "error" not in outcome, f"in-flight batch died: {outcome.get('error')}"
        assert len(outcome["result"]) == len(batch)
        # After the drain the session really is closed.
        with pytest.raises(RuntimeError, match="closed"):
            session.query_batch(batch)

    def test_needs_some_model_source(self):
        with pytest.raises(ValueError, match="at least one model"):
            AnalysisSession()

    def test_prism_backend_rejected(self, models):
        with pytest.raises(TypeError, match="batched"):
            AnalysisSession(models[1], backend="prism")

    def test_result_set_json_roundtrip(self, models, tmp_path):
        model = models[1]
        packet = model.ingress_packets[0]
        with AnalysisSession(model, workers=1) as session:
            results = session.query_batch(
                [Query.delivery(packet, 1), Query.distribution(packet, 1)]
            )
        path = tmp_path / "results.json"
        results.dump(str(path))
        payload = json.loads(path.read_text())
        assert payload["queries"] == 2
        assert payload["results"][0]["value"] == pytest.approx(1.0, abs=1e-6)
        assert isinstance(payload["results"][1]["value"], dict)
        assert payload["shards"]

    def test_result_set_accessors(self, models):
        model = models[1]
        packets = model.ingress_packets[:3]
        batch = [Query.delivery(packet, 1) for packet in packets]
        with AnalysisSession(model, workers=1) as session:
            results = session.query_batch(batch)
        assert isinstance(results, ResultSet)
        assert len(results) == 3
        assert results.value(batch[0]) == results[0].value
        assert [r.query for r in results] == batch
        assert results.by_kind("delivery") == results.results
        with pytest.raises(KeyError):
            results.value(Query.delivery((99, 99), 1))

    def test_stats_counters(self, models, all_pairs):
        with AnalysisSession(models=models.values(), workers=1) as session:
            session.query_batch(all_pairs)
            stats = session.stats()
        assert stats["queries"] == len(all_pairs)
        assert stats["batches"] == 1
        assert stats["shards"] >= 1
        assert stats["backend"] == "MatrixBackend"

    def test_warm_makes_batches_pure_hits(self, models):
        model = models[1]
        with AnalysisSession(model, workers=1) as session:
            session.warm()
            results = session.query_batch(
                [Query.delivery(packet, 1) for packet in model.ingress_packets]
            )
            assert results.cache_hits == len(model.ingress_packets)


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------
class TestServiceCli:
    def test_all_pairs_run(self, tmp_path, capsys):
        out = tmp_path / "results.json"
        code = service_main(
            [
                "--topology",
                "fattree:4",
                "--scheme",
                "ecmp",
                "--dest",
                "1",
                "--all-pairs",
                "--workers",
                "1",
                "--output",
                str(out),
            ]
        )
        assert code == 0
        payload = json.loads(out.read_text())
        assert payload["queries"] == 14
        assert all(
            result["value"] == pytest.approx(1.0, abs=1e-6)
            for result in payload["results"]
        )
        printed = capsys.readouterr().out
        assert "served 14 queries" in printed
        # The stats line surfaces the solver counters of the replica pool.
        match = re.search(
            r"solver: (\d+) factorization\(s\), (\d+) Schur update\(s\), "
            r"(\d+) row\(s\) assembled",
            printed,
        )
        assert match is not None
        assert int(match.group(1)) >= 1
        assert int(match.group(3)) > 0

    def test_batch_file_run(self, tmp_path):
        batch = tmp_path / "batch.json"
        batch.write_text(
            json.dumps(
                {
                    "queries": [
                        {"kind": "delivery", "ingress": [2, 3], "dest": 1},
                        {"kind": "hops", "ingress": [2, 3], "dest": 1},
                    ]
                }
            )
        )
        out = tmp_path / "results.json"
        code = service_main(
            [
                "--queries",
                str(batch),
                "--workers",
                "1",
                "--repeat",
                "2",
                "--output",
                str(out),
            ]
        )
        assert code == 0
        payload = json.loads(out.read_text())
        assert payload["queries"] == 2
        # The second --repeat pass is served entirely from the cache.
        assert payload["cache_hits"] == 2

    def test_pool_size_run(self, tmp_path, capsys):
        out = tmp_path / "results.json"
        code = service_main(
            [
                "--topology",
                "fattree:4",
                "--scheme",
                "ecmp",
                "--dest",
                "1",
                "--dest",
                "2",
                "--all-pairs",
                "--workers",
                "2",
                "--pool-size",
                "2",
                "--output",
                str(out),
            ]
        )
        assert code == 0
        payload = json.loads(out.read_text())
        assert payload["queries"] == 28
        # The two destination shards were served by distinct replicas.
        assert {shard["replica"] for shard in payload["shards"]} == {0, 1}
        assert all(shard["pool_mode"] == "thread" for shard in payload["shards"])
        assert "pool: 2 thread-hosted replicas" in capsys.readouterr().out

    def test_pool_size_rejected(self):
        with pytest.raises(SystemExit, match="pool-size"):
            service_main(["--all-pairs", "--pool-size", "0"])

    def test_empty_batch_rejected(self):
        with pytest.raises(SystemExit, match="no queries"):
            service_main(["--workers", "1"])

    def test_unknown_topology_rejected(self):
        with pytest.raises(SystemExit, match="unknown topology"):
            service_main(["--topology", "torus:3", "--all-pairs"])
