"""Property-based tests: the three executable semantics agree on random programs.

Hypothesis generates random guarded, history-free programs over a small
field domain; for every concrete input packet we require that

* the FDD compiler (exact arithmetic),
* the forward interpreter (exact arithmetic), and
* the reference denotational semantics (restricted to singleton inputs)

produce the same output distribution, and that this distribution has total
mass one.  This is an executable form of Theorem 3.1 specialised to the
single-packet state space the implementation uses.
"""

from __future__ import annotations

from fractions import Fraction

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import syntax as s
from repro.core.compiler import compile_policy
from repro.core.fdd.node import FddManager, output_distribution as fdd_output
from repro.core.interpreter import Interpreter
from repro.core.packet import DROP, Packet, PacketUniverse
from repro.core.semantics.denotational import eval_policy

FIELDS = ["f", "g"]
VALUES = [0, 1, 2]

tests = st.builds(s.test, st.sampled_from(FIELDS), st.sampled_from(VALUES))
assigns = st.builds(s.assign, st.sampled_from(FIELDS), st.sampled_from(VALUES))


def predicates(depth: int = 2):
    base = st.one_of(tests, st.just(s.skip()), st.just(s.drop()))
    if depth == 0:
        return base
    sub = predicates(depth - 1)
    return st.one_of(
        base,
        st.builds(lambda a, b: s.conj(a, b), sub, sub),
        st.builds(lambda a, b: s.disj(a, b), sub, sub),
        st.builds(s.neg, sub),
    )


def loop_free(depth: int = 2):
    base = st.one_of(assigns, predicates(1))
    if depth == 0:
        return base
    sub = loop_free(depth - 1)
    probability = st.sampled_from([Fraction(1, 4), Fraction(1, 2), Fraction(3, 4)])
    return st.one_of(
        base,
        st.builds(lambda a, b: s.seq(a, b), sub, sub),
        st.builds(
            lambda a, b, r: s.choice((a, r), (b, 1 - r)), sub, sub, probability
        ),
        st.builds(s.ite, predicates(1), sub, sub),
    )


def guarded_programs():
    # A loop-free prefix followed by a (probabilistically terminating) loop.
    def attach_loop(prefix, guard, flip):
        body = s.choice((s.assign("f", 2), Fraction(1, 2)), (flip, Fraction(1, 2)))
        return s.seq(prefix, s.while_do(s.conj(guard, s.neg(s.test("f", 2))), body))

    return st.one_of(
        loop_free(2),
        st.builds(attach_loop, loop_free(1), predicates(1), loop_free(1)),
    )


UNIVERSE = PacketUniverse({"f": VALUES, "g": VALUES})


def reference_output(policy: s.Policy, packet: Packet):
    dist = eval_policy(policy, frozenset([packet]), max_star_iterations=400, tolerance=1e-13)
    return dist.map(lambda outputs: next(iter(outputs)) if outputs else DROP)


@settings(max_examples=60, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(policy=loop_free(2), packet=st.sampled_from(list(UNIVERSE.packets)))
def test_loop_free_semantics_agree(policy, packet):
    via_fdd = fdd_output(compile_policy(policy, exact=True), packet)
    via_interp = Interpreter(exact=True).run_packet(policy, packet)
    via_reference = reference_output(policy, packet)
    assert via_fdd == via_interp
    assert via_fdd.close_to(via_reference, tolerance=1e-9)
    assert via_fdd.total_mass() == 1


@settings(max_examples=30, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(policy=guarded_programs(), packet=st.sampled_from(list(UNIVERSE.packets)))
def test_guarded_semantics_agree(policy, packet):
    via_fdd = fdd_output(compile_policy(policy, exact=True), packet)
    via_interp = Interpreter(exact=True).run_packet(policy, packet)
    assert via_fdd.close_to(via_interp, tolerance=1e-9)
    assert float(via_fdd.total_mass()) == pytest.approx(1.0, abs=1e-9)
    via_reference = reference_output(policy, packet)
    assert via_fdd.close_to(via_reference, tolerance=1e-6)


@settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(policy=loop_free(2))
def test_compilation_is_deterministic_and_canonical(policy):
    manager = FddManager()
    first = compile_policy(policy, manager=manager, exact=True)
    second = compile_policy(policy, manager=manager, exact=True)
    assert first is second


@settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(policy=loop_free(2), packet=st.sampled_from(list(UNIVERSE.packets)))
def test_sequencing_with_skip_and_drop(policy, packet):
    interp = Interpreter(exact=True)
    assert interp.run_packet(s.seq(policy, s.skip()), packet) == interp.run_packet(policy, packet)
    assert interp.run_packet(s.seq(s.drop(), policy), packet) == interp.run_packet(
        s.drop(), packet
    )


@settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    policy=loop_free(1),
    other=loop_free(1),
    r=st.sampled_from([Fraction(1, 4), Fraction(1, 2)]),
    packet=st.sampled_from(list(UNIVERSE.packets)),
)
def test_choice_is_convex_combination(policy, other, r, packet):
    interp = Interpreter(exact=True)
    combined = interp.run_packet(s.choice((policy, r), (other, 1 - r)), packet)
    left = interp.run_packet(policy, packet)
    right = interp.run_packet(other, packet)
    outcomes = left.support() | right.support() | combined.support()
    for outcome in outcomes:
        assert combined(outcome) == r * left(outcome) + (1 - r) * right(outcome)
