"""Tests for the native backend facade and the parallel backend."""

import pytest

from repro.backends import NativeBackend, ParallelInterpreter, transition_rows
from repro.core import syntax as s
from repro.core.packet import DROP, Packet
from repro.network import running_example as ex


@pytest.fixture(scope="module")
def example():
    return ex.build()


class TestNativeBackend:
    def test_compile_and_query(self, example):
        backend = NativeBackend(exact=True)
        fdd = backend.compile(example.models_naive["f0"])
        assert fdd is not None
        dist = backend.output_distribution(example.models_naive["f0"], example.ingress_packet)
        assert dist(Packet({"sw": 2, "pt": 2, "up2": 0, "up3": 0})) == 1

    def test_fdd_size_positive(self, example):
        backend = NativeBackend()
        assert backend.fdd_size(example.naive) > 1

    def test_output_distributions_per_ingress(self, example):
        backend = NativeBackend()
        dists = backend.output_distributions(
            example.models_resilient["f2"], [example.ingress_packet]
        )
        assert len(dists) == 1

    def test_uniform_ingress_set(self, example):
        backend = NativeBackend()
        dist = backend.output_distribution(example.naive, [Packet({"sw": 1, "pt": 1}), Packet({"sw": 2, "pt": 1})])
        assert float(dist.total_mass()) == pytest.approx(1.0)

    def test_timings_recorded(self, example):
        backend = NativeBackend()
        backend.compile(example.naive)
        backend.output_distribution(example.naive, example.ingress_packet)
        timings = backend.timings()
        assert set(timings) == {"compile", "query"}
        assert all(value >= 0 for value in timings.values())

    def test_certain_outcomes_passthrough(self, example):
        backend = NativeBackend()
        outcomes, diverge = backend.certain_outcomes(
            example.models_resilient["f1"], example.ingress_packet
        )
        assert not diverge
        assert all(o is not DROP for o in outcomes)


class TestParallelBackend:
    def test_transition_rows_sequential_fallback(self):
        body = s.ite(s.test("sw", 1), s.assign("sw", 2), s.drop())
        rows = transition_rows(body, [Packet({"sw": 1}), Packet({"sw": 9})], workers=1)
        assert rows[Packet({"sw": 1})](Packet({"sw": 2})) == 1
        assert rows[Packet({"sw": 9})](DROP) == 1

    def test_transition_rows_parallel_agrees_with_sequential(self):
        body = s.case(
            [(s.test("sw", i), s.choice((s.assign("sw", i + 1), 0.5), (s.drop(), 0.5)))
             for i in range(1, 7)],
            s.drop(),
        )
        packets = [Packet({"sw": i}) for i in range(1, 7)]
        sequential = transition_rows(body, packets, workers=1)
        parallel = transition_rows(body, packets, workers=2)
        for packet in packets:
            assert sequential[packet].close_to(parallel[packet])

    def test_parallel_interpreter_matches_sequential(self, example):
        from repro.core.interpreter import Interpreter

        model = example.models_resilient["f2"]
        sequential = Interpreter().run_packet(model, example.ingress_packet)
        parallel = ParallelInterpreter(workers=2).run_packet(model, example.ingress_packet)
        assert sequential.close_to(parallel, tolerance=1e-9)


class TestParallelExactness:
    """ParallelBackend(exact=True) must not degrade weights to floats."""

    def exact_body(self):
        from fractions import Fraction

        return s.case(
            [
                (s.test("sw", i), s.choice(
                    (s.assign("sw", i + 1), Fraction(1, 3)),
                    (s.assign("sw", 0), Fraction(2, 3)),
                ))
                for i in range(1, 7)
            ],
            s.drop(),
        )

    def test_transition_rows_preserve_fractions(self):
        from fractions import Fraction

        packets = [Packet({"sw": i}) for i in range(1, 7)]
        rows = transition_rows(self.exact_body(), packets, workers=2, exact=True)
        for dist in rows.values():
            assert all(isinstance(prob, Fraction) for _, prob in dist.items())

    def test_exact_parallel_backend_loop(self):
        from fractions import Fraction

        from repro.backends import ParallelBackend

        body = s.case(
            [
                (s.test("sw", i), s.choice(
                    (s.assign("sw", i + 1), Fraction(1, 2)),
                    (s.assign("sw", i), Fraction(1, 2)),
                ))
                for i in range(1, 5)
            ],
            s.drop(),
        )
        policy = s.seq(s.test("sw", 1), s.while_do(s.neg(s.test("sw", 5)), body))
        backend = ParallelBackend(exact=True, workers=2)
        dist = backend.output_distribution(policy, Packet({"sw": 1}))
        assert dist(Packet({"sw": 5})) == 1
        assert all(isinstance(prob, Fraction) for _, prob in dist.items())


class TestParallelCompiledShipping:
    """Workers evaluate the shipped compiled-body spec, not the AST."""

    def test_transition_rows_with_precompiled_body(self):
        from repro.core.compiler import Compiler
        from repro.core.fdd.evaluator import CompiledBody

        body = s.case(
            [(s.test("sw", i), s.choice((s.assign("sw", i + 1), 0.5), (s.drop(), 0.5)))
             for i in range(1, 7)],
            s.drop(),
        )
        compiled = CompiledBody.try_compile(body, Compiler())
        assert compiled is not None
        packets = [Packet({"sw": i}) for i in range(1, 7)]
        via_spec = transition_rows(body, packets, workers=2, compiled=compiled)
        via_ast = transition_rows(body, packets, workers=1)
        for packet in packets:
            assert via_spec[packet].close_to(via_ast[packet])

    def test_parallel_interpreter_uses_compiled_loops(self, example):
        interp = ParallelInterpreter(workers=2)
        model = example.models_resilient["f2"]
        interp.run_packet(model, example.ingress_packet)
        assert interp.loop_stats()["compiled_loops"] >= 1


class TestPersistentPool:
    """The parallel interpreter reuses one worker pool until close()."""

    def wide_loop(self, n: int = 20):
        # Each state fans out to four successors, so exploration waves are
        # wide enough (>= 4 states) to engage the worker pool.
        body = s.case(
            [
                (
                    s.test("sw", i),
                    s.choice(
                        *[(s.assign("sw", min(i + step, n)), 0.25) for step in (1, 2, 3, 4)]
                    ),
                )
                for i in range(1, n)
            ],
            s.drop(),
        )
        return s.while_do(s.neg(s.test("sw", n)), body)

    def test_pool_reused_across_seeds_and_loops(self):
        loop = self.wide_loop()
        # Two distinct loop objects over the SAME body AST: the pool is
        # keyed by the body, so both explorations share one pool.
        sibling = s.while_do(loop.guard, loop.body)
        with ParallelInterpreter(workers=2) as interp:
            interp.run_packet(loop, Packet({"sw": 1}))
            assert interp.pools_started == 1
            assert interp._pool is not None
            interp.run_packet(loop, Packet({"sw": 2}))  # incremental seed
            interp.run_packet(sibling, Packet({"sw": 1}))
            assert interp.pools_started == 1
        assert interp._pool is None  # context exit closed the pool

    def test_close_is_idempotent_and_explicit(self):
        interp = ParallelInterpreter(workers=2)
        interp.run_packet(self.wide_loop(), Packet({"sw": 1}))
        assert interp.pools_started == 1
        interp.close()
        interp.close()
        assert interp._pool is None
        # A closed interpreter can still serve: the pool restarts on demand.
        interp.run_packet(self.wide_loop(), Packet({"sw": 1}))
        assert interp.pools_started == 2
        interp.close()

    def test_backend_close_tears_down_interpreter_pool(self, example):
        from repro.backends import ParallelBackend

        with ParallelBackend(workers=2) as backend:
            model = example.models_resilient["f2"]
            backend.output_distribution(model, example.ingress_packet)
        assert backend.interpreter._pool is None

    def test_sequential_interpreter_close_is_noop(self, example):
        from repro.core.interpreter import Interpreter

        with Interpreter() as interp:
            dist = interp.run_packet(example.naive, example.ingress_packet)
        assert sum(float(prob) for _, prob in dist.items()) == pytest.approx(1.0)

    def test_dropped_interpreter_finalizes_its_pool(self):
        import gc
        import weakref

        interp = ParallelInterpreter(workers=2)
        interp.run_packet(self.wide_loop(), Packet({"sw": 1}))
        assert interp._pool is not None
        finalizer = interp._pool_finalizer
        assert finalizer is not None and finalizer.alive
        # Dropping the interpreter without close() (the throwaway
        # backend="parallel" pattern) must still reap the workers.
        ref = weakref.ref(interp)
        del interp
        gc.collect()
        assert ref() is None
        assert not finalizer.alive  # finalizer ran: pool terminated
