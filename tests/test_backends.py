"""Tests for the native backend facade and the parallel backend."""

import pytest

from repro.backends import NativeBackend, ParallelInterpreter, transition_rows
from repro.core import syntax as s
from repro.core.packet import DROP, Packet
from repro.network import running_example as ex


@pytest.fixture(scope="module")
def example():
    return ex.build()


class TestNativeBackend:
    def test_compile_and_query(self, example):
        backend = NativeBackend(exact=True)
        fdd = backend.compile(example.models_naive["f0"])
        assert fdd is not None
        dist = backend.output_distribution(example.models_naive["f0"], example.ingress_packet)
        assert dist(Packet({"sw": 2, "pt": 2, "up2": 0, "up3": 0})) == 1

    def test_fdd_size_positive(self, example):
        backend = NativeBackend()
        assert backend.fdd_size(example.naive) > 1

    def test_output_distributions_per_ingress(self, example):
        backend = NativeBackend()
        dists = backend.output_distributions(
            example.models_resilient["f2"], [example.ingress_packet]
        )
        assert len(dists) == 1

    def test_uniform_ingress_set(self, example):
        backend = NativeBackend()
        dist = backend.output_distribution(example.naive, [Packet({"sw": 1, "pt": 1}), Packet({"sw": 2, "pt": 1})])
        assert float(dist.total_mass()) == pytest.approx(1.0)

    def test_timings_recorded(self, example):
        backend = NativeBackend()
        backend.compile(example.naive)
        backend.output_distribution(example.naive, example.ingress_packet)
        timings = backend.timings()
        assert set(timings) == {"compile", "query"}
        assert all(value >= 0 for value in timings.values())

    def test_certain_outcomes_passthrough(self, example):
        backend = NativeBackend()
        outcomes, diverge = backend.certain_outcomes(
            example.models_resilient["f1"], example.ingress_packet
        )
        assert not diverge
        assert all(o is not DROP for o in outcomes)


class TestParallelBackend:
    def test_transition_rows_sequential_fallback(self):
        body = s.ite(s.test("sw", 1), s.assign("sw", 2), s.drop())
        rows = transition_rows(body, [Packet({"sw": 1}), Packet({"sw": 9})], workers=1)
        assert rows[Packet({"sw": 1})](Packet({"sw": 2})) == 1
        assert rows[Packet({"sw": 9})](DROP) == 1

    def test_transition_rows_parallel_agrees_with_sequential(self):
        body = s.case(
            [(s.test("sw", i), s.choice((s.assign("sw", i + 1), 0.5), (s.drop(), 0.5)))
             for i in range(1, 7)],
            s.drop(),
        )
        packets = [Packet({"sw": i}) for i in range(1, 7)]
        sequential = transition_rows(body, packets, workers=1)
        parallel = transition_rows(body, packets, workers=2)
        for packet in packets:
            assert sequential[packet].close_to(parallel[packet])

    def test_parallel_interpreter_matches_sequential(self, example):
        from repro.core.interpreter import Interpreter

        model = example.models_resilient["f2"]
        sequential = Interpreter().run_packet(model, example.ingress_packet)
        parallel = ParallelInterpreter(workers=2).run_packet(model, example.ingress_packet)
        assert sequential.close_to(parallel, tolerance=1e-9)
