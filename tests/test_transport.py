"""Tests for the framed wire transport (``repro.service.transport``).

Covers the codec round trip (hypothesis), every corruption class of the
frame format — truncation, checksum mismatch, bad magic, oversize — and
the contract that matters to supervision: each of them surfaces as a
typed ``FrameError`` (and, through a remote worker handle, as
``ReplicaFailure(kind="transport")``), never as a hang or a pickle
exception.
"""

from __future__ import annotations

import socket
import struct
import threading

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.service.pool import ReplicaFailure
from repro.service.procpool import PlanDirectory, RemoteWorkerHandle
from repro.service.transport import (
    DEFAULT_MAX_FRAME,
    HEADER,
    MAGIC,
    FrameError,
    PipeTransport,
    SocketTransport,
    TransportClosed,
    TransportTimeout,
    decode_header,
    decode_message,
    encode_message,
)

# Messages shaped like the worker protocol: tuples of primitives and
# small containers, all picklable.
message_values = st.recursive(
    st.one_of(
        st.integers(min_value=-(2**40), max_value=2**40),
        st.floats(allow_nan=False, allow_infinity=False),
        st.text(max_size=40),
        st.binary(max_size=64),
        st.booleans(),
        st.none(),
    ),
    lambda inner: st.one_of(
        st.tuples(inner, inner),
        st.lists(inner, max_size=4),
        st.dictionaries(st.text(max_size=8), inner, max_size=4),
    ),
    max_leaves=12,
)
wire_messages = st.tuples(
    st.sampled_from(["plan", "query", "result", "ok", "heartbeat"]), message_values
)


class TestFrameCodec:
    @given(message=wire_messages)
    @settings(max_examples=80, suppress_health_check=[HealthCheck.too_slow])
    def test_round_trip(self, message):
        assert decode_message(encode_message(message)) == message

    @given(message=wire_messages, cut=st.integers(min_value=0, max_value=200))
    @settings(max_examples=60, suppress_health_check=[HealthCheck.too_slow])
    def test_any_truncation_is_typed(self, message, cut):
        """Every proper prefix decodes to FrameError, never a pickle error."""
        frame = encode_message(message)
        prefix = frame[: min(cut, len(frame) - 1)]
        with pytest.raises(FrameError) as excinfo:
            decode_message(prefix)
        assert excinfo.value.reason == "truncated"

    @given(
        message=wire_messages,
        offset=st.integers(min_value=0, max_value=10_000),
        flip=st.integers(min_value=1, max_value=255),
    )
    @settings(max_examples=60, suppress_health_check=[HealthCheck.too_slow])
    def test_any_payload_corruption_is_caught(self, message, offset, flip):
        frame = bytearray(encode_message(message))
        payload_len = len(frame) - HEADER.size
        index = HEADER.size + (offset % payload_len)
        frame[index] ^= flip
        with pytest.raises(FrameError) as excinfo:
            decode_message(bytes(frame))
        assert excinfo.value.reason == "checksum"

    def test_bad_magic_is_desync(self):
        frame = bytearray(encode_message(("ping",)))
        frame[0] ^= 0xFF
        with pytest.raises(FrameError) as excinfo:
            decode_message(bytes(frame))
        assert excinfo.value.reason == "magic"

    def test_oversize_refused_from_header_alone(self):
        """A huge declared length is refused before any allocation."""
        header = HEADER.pack(MAGIC, DEFAULT_MAX_FRAME + 1, 0)
        with pytest.raises(FrameError) as excinfo:
            decode_header(header)
        assert excinfo.value.reason == "oversize"

    def test_oversize_refused_on_encode(self):
        with pytest.raises(FrameError) as excinfo:
            encode_message(b"x" * 2048, max_frame_bytes=1024)
        assert excinfo.value.reason == "oversize"

    def test_header_layout_is_stable(self):
        # The wire format is a compatibility surface: magic, u32 length,
        # u32 crc, big-endian.
        assert HEADER.size == 12
        frame = encode_message(("ping",))
        magic, length, _crc = struct.unpack("!4sII", frame[:12])
        assert magic == b"RPF1"
        assert length == len(frame) - 12


def _socket_pair():
    a, b = socket.socketpair()
    return SocketTransport(a), SocketTransport(b)


class TestSocketTransport:
    def test_round_trip_and_threaded_sends_interleave_whole_frames(self):
        left, right = _socket_pair()
        try:
            messages = [("result", i, {"pid": i}) for i in range(50)]
            threads = [
                threading.Thread(target=left.send, args=(m,)) for m in messages
            ]
            for thread in threads:
                thread.start()
            received = [right.recv(timeout=5.0) for _ in messages]
            for thread in threads:
                thread.join()
            # Frames never interleave bytes; only ordering is unspecified.
            assert sorted(received) == sorted(messages)
        finally:
            left.close()
            right.close()

    def test_eof_at_boundary_is_closed_not_corrupt(self):
        left, right = _socket_pair()
        left.close()
        try:
            with pytest.raises(TransportClosed):
                right.recv(timeout=5.0)
        finally:
            right.close()

    def test_eof_mid_frame_is_truncated(self):
        a, b = socket.socketpair()
        right = SocketTransport(b)
        try:
            frame = encode_message(("result", list(range(100))))
            a.sendall(frame[: len(frame) - 5])
            a.close()
            with pytest.raises(FrameError) as excinfo:
                right.recv(timeout=5.0)
            assert excinfo.value.reason == "truncated"
        finally:
            right.close()

    def test_corrupted_frame_is_checksum_failure(self):
        left, right = _socket_pair()
        try:
            left.send_corrupted(("result", 1, {}))
            with pytest.raises(FrameError) as excinfo:
                right.recv(timeout=5.0)
            assert excinfo.value.reason == "checksum"
        finally:
            left.close()
            right.close()

    def test_oversize_frame_refused_before_body(self):
        a, b = socket.socketpair()
        right = SocketTransport(b, max_frame_bytes=1024)
        try:
            # Declare 1 GiB; send only the header. The receiver must
            # refuse from the header alone instead of trying to read
            # (or allocate) the body.
            a.sendall(HEADER.pack(MAGIC, 1 << 30, 0))
            with pytest.raises(FrameError) as excinfo:
                right.recv(timeout=5.0)
            assert excinfo.value.reason == "oversize"
        finally:
            a.close()
            right.close()

    def test_recv_timeout_is_typed(self):
        left, right = _socket_pair()
        try:
            with pytest.raises(TransportTimeout):
                right.recv(timeout=0.05)
        finally:
            left.close()
            right.close()


class TestPipeTransport:
    def test_round_trip_and_close_mapping(self):
        import multiprocessing

        a, b = multiprocessing.Pipe(duplex=True)
        left, right = PipeTransport(a), PipeTransport(b)
        left.send(("ping",))
        assert right.recv(timeout=5.0) == ("ping",)
        left.close()
        with pytest.raises(TransportClosed):
            right.recv(timeout=5.0)
        right.close()


# ---------------------------------------------------------------------------
# Corruption → ReplicaFailure(kind="transport") through a worker handle
# ---------------------------------------------------------------------------
class _FakeHost:
    """A minimal host daemon: accepts one client, runs ``script(transport)``."""

    def __init__(self, script):
        self._script = script
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.bind(("127.0.0.1", 0))
        self._listener.listen(1)
        self.address = self._listener.getsockname()
        self._thread = threading.Thread(target=self._run, daemon=True)
        self._thread.start()

    def _run(self):
        sock, _ = self._listener.accept()
        transport = SocketTransport(sock)
        try:
            self._script(transport)
        finally:
            transport.close()

    def close(self):
        self._thread.join(timeout=5.0)
        self._listener.close()


def _attach_then(script):
    """A fake-host script: answer the attach handshake, then ``script``."""

    def run(transport):
        hello = transport.recv(timeout=5.0)
        assert hello[0] == "attach"
        transport.send(("attached", {"pid": 4242, "worker": hello[1]["replica"]}))
        script(transport)

    return run


class TestRemoteHandleFailureTaxonomy:
    def _handle(self, host) -> RemoteWorkerHandle:
        return RemoteWorkerHandle(
            0, PlanDirectory(None), host.address, shard_timeout=5.0
        )

    def test_garbled_reply_is_transport_failure(self):
        def script(transport):
            transport.recv(timeout=5.0)  # the ping request
            transport.send_corrupted(("ok", {"pid": 4242}))

        host = _FakeHost(_attach_then(script))
        handle = self._handle(host)
        try:
            with pytest.raises(ReplicaFailure) as excinfo:
                handle.ping()
            assert excinfo.value.kind == "transport"
            assert handle.failure is excinfo.value
        finally:
            handle.close()
            host.close()

    def test_truncated_reply_is_transport_failure(self):
        def script(transport):
            transport.recv(timeout=5.0)
            frame = encode_message(("ok", {"pid": 4242, "blob": b"x" * 4096}))
            transport._sock.sendall(frame[: len(frame) - 10])
            transport._sock.shutdown(socket.SHUT_WR)

        host = _FakeHost(_attach_then(script))
        handle = self._handle(host)
        try:
            with pytest.raises(ReplicaFailure) as excinfo:
                handle.ping()
            assert excinfo.value.kind == "transport"
        finally:
            handle.close()
            host.close()

    def test_clean_close_is_crash_failure(self):
        def script(transport):
            transport.recv(timeout=5.0)
            # close without answering: EOF at a frame boundary

        host = _FakeHost(_attach_then(script))
        handle = self._handle(host)
        try:
            with pytest.raises(ReplicaFailure) as excinfo:
                handle.ping()
            assert excinfo.value.kind == "crash"
        finally:
            handle.close()
            host.close()

    def test_worker_death_notice_carries_exit_code(self):
        def script(transport):
            transport.recv(timeout=5.0)
            transport.send(("worker-died", 137))

        host = _FakeHost(_attach_then(script))
        handle = self._handle(host)
        try:
            with pytest.raises(ReplicaFailure) as excinfo:
                handle.ping()
            assert excinfo.value.kind == "crash"
            assert handle.exit_code == 137
        finally:
            handle.close()
            host.close()

    def test_unanswered_request_is_timeout_not_hang(self):
        def script(transport):
            transport.recv(timeout=10.0)  # swallow the ping, never answer
            # Hold the connection open until the client hangs up.
            try:
                transport.recv(timeout=10.0)
            except Exception:
                pass

        host = _FakeHost(_attach_then(script))
        handle = RemoteWorkerHandle(
            0, PlanDirectory(None), host.address, shard_timeout=0.3
        )
        try:
            with pytest.raises(ReplicaFailure) as excinfo:
                handle.ping()
            assert excinfo.value.kind == "timeout"
        finally:
            handle.close()
            host.close()

    def test_refused_attach_raises_transport_error(self):
        def script(transport):
            transport.recv(timeout=5.0)
            transport.send(("error", "at-capacity"))

        from repro.service.transport import TransportError

        host = _FakeHost(script)
        with pytest.raises(TransportError, match="at-capacity"):
            RemoteWorkerHandle(0, PlanDirectory(None), host.address)
        host.close()
