"""Tests for the backend replica pool (``repro.service.pool``) and the
cross-manager (spec-based) cache-key semantics it depends on."""

from __future__ import annotations

import threading
import time

import pytest

from repro.analysis.queries import delivery_probability
from repro.backends import MatrixBackend
from repro.failure.models import independent_failure_program
from repro.network.model import build_model
from repro.routing import downward_failable_ports, ecmp_policy
from repro.service import AnalysisSession, BackendPool, Query
from repro.topology import edge_switches, fat_tree


def ecmp_model(topo, dest: int, failure_probability=1 / 1000):
    failable = downward_failable_ports(topo)
    return build_model(
        topo,
        routing=ecmp_policy(topo, dest),
        dest=dest,
        failure=independent_failure_program(failable, failure_probability),
        failable=failable,
    )


@pytest.fixture(scope="module")
def topo():
    return fat_tree(4)


@pytest.fixture(scope="module")
def models(topo):
    dests = edge_switches(topo)[:3]
    return {dest: ecmp_model(topo, dest) for dest in dests}


@pytest.fixture(scope="module")
def all_pairs(models):
    """The FatTree k=4 all-pairs delivery batch over the fixture dests."""
    return [
        Query.delivery(packet, dest)
        for dest, model in models.items()
        for packet in model.ingress_packets
    ]


@pytest.fixture(scope="module")
def per_call_values(models, all_pairs):
    """Reference answers from the per-call ``repro.analysis`` entry point."""
    return [
        delivery_probability(models[query.dest], inputs=[query.ingress])
        for query in all_pairs
    ]


# ---------------------------------------------------------------------------
# Cross-manager plan specs and cache keys (the satellite regression suite)
# ---------------------------------------------------------------------------
class TestCrossManagerKeys:
    def test_fork_is_independent_but_shares_specs(self, models):
        model = next(iter(models.values()))
        base = MatrixBackend()
        base.output_distributions(model.policy, model.ingress_packets[:2])
        replica = base.fork()
        # Fully independent mutable state...
        assert replica.manager is not base.manager
        assert replica._plans is not base._plans
        # ...but one shared spec store, already holding the base's plan.
        assert replica._spec_store is base._spec_store
        assert len(replica._spec_store) == 1
        # The replica's plan rebuilds from specs: no AST compilation, and
        # its stage FDDs live in the replica's own manager.
        plan = replica.plan(model.policy)
        for stage, base_stage in zip(plan.stages, base.plan(model.policy).stages):
            fdd = getattr(stage, "fdd", None) or stage.body_fdd
            base_fdd = getattr(base_stage, "fdd", None) or base_stage.body_fdd
            assert fdd is not base_fdd
            assert fdd.manager is replica.manager

    def test_plan_keys_identical_across_managers(self, models):
        """Two replicas compiling the same model produce the same key."""
        model = next(iter(models.values()))
        base = MatrixBackend()
        replica = base.fork()
        independent = MatrixBackend()  # no shared store: compiles from the AST
        key = base.plan_key(model.policy)
        assert replica.plan_key(model.policy) == key
        assert independent.plan_key(model.policy) == key
        # Spec-based, not id-based: no FDD node (manager-bound object) and
        # no raw id() may appear anywhere in the key.
        def flat(value):
            if isinstance(value, tuple):
                for item in value:
                    yield from flat(item)
            else:
                yield value
        from repro.core.fdd.node import FddNode

        assert not any(isinstance(leaf, FddNode) for leaf in flat(key))

    def test_replica_answers_match_base(self, models):
        model = next(iter(models.values()))
        base = MatrixBackend()
        expected = base.output_distributions(model.policy, model.ingress_packets)
        replica = base.fork()
        served = replica.output_distributions(model.policy, model.ingress_packets)
        for packet in model.ingress_packets:
            assert served[packet].close_to(expected[packet], tolerance=1e-12)

    def test_session_policy_key_shared_across_replicas(self, models):
        model = next(iter(models.values()))
        with AnalysisSession(model, pool_size=2, workers=1) as session:
            pool = session.pool
            with pool.lease_replica(0) as first:
                key_a = session._policy_key(model.policy, first.backend)
            with pool.lease_replica(1) as second:
                key_b = session._policy_key(model.policy, second.backend)
            assert key_a == key_b
            # One memoised entry serves both replicas.
            assert len(session._keys) == 1


# ---------------------------------------------------------------------------
# Pooled sessions agree with pool-of-1 and with per-call analysis
# ---------------------------------------------------------------------------
class TestPooledAgreement:
    @pytest.mark.parametrize("planner", ["destination", "ingress:4", "round-robin:3"])
    def test_pool_matches_single_and_per_call(
        self, models, all_pairs, per_call_values, planner
    ):
        """Pool of N answers the all-pairs batch identically (≤1e-9) to a
        pool of 1 and to per-call ``repro.analysis`` results."""
        with AnalysisSession(
            models=models.values(), planner=planner, workers=1, pool_size=1
        ) as single:
            baseline = single.query_batch(all_pairs).values
        with AnalysisSession(
            models=models.values(), planner=planner, workers=4, pool_size=3
        ) as pooled:
            served = pooled.query_batch(all_pairs).values
        for value, reference, expected in zip(served, baseline, per_call_values):
            assert value == pytest.approx(reference, abs=1e-9)
            assert value == pytest.approx(expected, abs=1e-9)

    def test_cached_repeat_leases_no_replica(self, models, all_pairs):
        with AnalysisSession(models=models.values(), workers=4, pool_size=2) as session:
            session.query_batch(all_pairs)
            repeat = session.query_batch(all_pairs)
            assert repeat.cache_hits == len(all_pairs)
            # Fully cached shards never touch a replica.
            assert all(report.replica == -1 for report in repeat.shards)

    def test_results_cached_across_replicas(self, models, all_pairs):
        """A hit computed on one replica serves queries headed anywhere."""
        with AnalysisSession(models=models.values(), workers=1, pool_size=3) as session:
            first = session.query_batch(all_pairs, planner="destination")
            assert first.cache_hits == 0
            # Different planner, different shard->replica routing: still
            # answered entirely from the shared session cache.
            second = session.query_batch(all_pairs, planner="round-robin:3")
            assert second.cache_hits == len(all_pairs)


# ---------------------------------------------------------------------------
# Affinity routing, work stealing, and lease exclusivity
# ---------------------------------------------------------------------------
class TestRouting:
    def test_affinity_sticks_sequentially(self, models, all_pairs):
        # workers=1: shards run one at a time, so the preferred replica is
        # always free and affinity routing is perfectly sticky.
        with AnalysisSession(
            models=models.values(), workers=1, pool_size=2, cache=False
        ) as session:
            first = session.query_batch(all_pairs)
            serving = {r.label: r.replica for r in first.shards}
            again = session.query_batch(all_pairs)
            assert {r.label: r.replica for r in again.shards} == serving
            assert session.pool.steals == 0
            # Destinations spread over both replicas.
            assert len(set(serving.values())) == 2

    def test_idle_replica_steals_bound_affinity(self, models):
        model = next(iter(models.values()))
        with AnalysisSession(model, pool_size=2, workers=1) as session:
            pool = session.pool
            with pool.lease(("dest", 7)) as holder:
                bound = holder.index
                grabbed: list[int] = []

                def contend():
                    with pool.lease(("dest", 7)) as thief:
                        grabbed.append(thief.index)

                thread = threading.Thread(target=contend)
                thread.start()
                thread.join(timeout=5)
                assert not thread.is_alive()
            # The preferred replica was busy and the other was idle: the
            # idle one must have served the request (no waiting) — but the
            # binding stays with the warm replica, so concurrent shards of
            # one destination cannot ping-pong it across the pool.
            assert grabbed and grabbed[0] != bound
            assert pool.steals == 1
            assert pool.stats()["affinities"][("dest", 7)] == bound

    def test_leases_are_exclusive_under_contention(self):
        backend = MatrixBackend()
        pool = BackendPool(backend, 2)
        active = [0, 0]
        guard = threading.Lock()
        failures: list[str] = []

        def hammer():
            for _ in range(25):
                with pool.lease() as replica:
                    with guard:
                        active[replica.index] += 1
                        if active[replica.index] > 1:
                            failures.append(f"double lease of {replica.index}")
                    time.sleep(0.0005)
                    with guard:
                        active[replica.index] -= 1

        threads = [threading.Thread(target=hammer) for _ in range(6)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not failures
        assert sum(replica.leases for replica in pool.replicas) == 150
        pool.close()

    def test_shard_windows_overlap(self, models, all_pairs):
        """The acceptance check: shard wall-clock windows overlap, i.e.
        no shard waited out another replica's solve before starting."""
        with AnalysisSession(models=models.values(), workers=4, pool_size=3) as session:
            result = session.query_batch(all_pairs)
        solved = [r for r in result.shards if r.replica >= 0]
        assert len({r.replica for r in solved}) > 1
        assert any(
            a.overlaps(b) for a in solved for b in solved if a.index < b.index
        )
        for report in result.shards:
            assert report.finished >= report.started
            assert report.seconds == pytest.approx(
                report.finished - report.started, abs=1e-6
            )


# ---------------------------------------------------------------------------
# Warmup takes the lease path (thread-safety satellite)
# ---------------------------------------------------------------------------
class TestWarm:
    def test_warm_preplans_every_replica(self, models):
        model = next(iter(models.values()))
        with AnalysisSession(model, pool_size=3, workers=1) as session:
            session.warm(model.dest)
            for replica in session.pool.replicas:
                assert len(replica.backend._plans) == 1
            batch = [Query.delivery(p, model.dest) for p in model.ingress_packets]
            assert session.query_batch(batch).cache_hits == len(batch)

    def test_plan_only_warm(self, models):
        model = next(iter(models.values()))
        with AnalysisSession(model, pool_size=2, workers=1) as session:
            session.warm(model.dest, solve=False)
            for replica in session.pool.replicas:
                assert len(replica.backend._plans) == 1
            # Plans exist everywhere, but nothing was solved or cached.
            batch = [Query.delivery(p, model.dest) for p in model.ingress_packets]
            assert session.query_batch(batch).cache_hits == 0

    def test_warm_races_query_batch_safely(self, models):
        """Warmup and a concurrent batch on the same destination must not
        corrupt state: warm goes through the same leases as queries."""
        model = next(iter(models.values()))
        expected = delivery_probability(model, inputs=[model.ingress_packets[0]])
        errors: list[BaseException] = []
        with AnalysisSession(model, pool_size=2, workers=2, cache=False) as session:
            batch = [Query.delivery(p, model.dest) for p in model.ingress_packets]

            def warm_loop():
                try:
                    for _ in range(3):
                        session.warm(model.dest)
                except BaseException as exc:  # pragma: no cover - failure path
                    errors.append(exc)

            thread = threading.Thread(target=warm_loop)
            thread.start()
            for _ in range(3):
                result = session.query_batch(batch)
                assert result.values[0] == pytest.approx(expected, abs=1e-9)
            thread.join(timeout=30)
            assert not thread.is_alive()
        assert not errors


# ---------------------------------------------------------------------------
# Solver-state reset (keep plans) and loop-stage memoisation
# ---------------------------------------------------------------------------
class TestSolverReset:
    def test_reset_solutions_keeps_plans_and_answers(self, models):
        model = next(iter(models.values()))
        backend = MatrixBackend()
        before = backend.output_distributions(model.policy, model.ingress_packets)
        plan = backend.plan(model.policy)
        assert any(stage.factorizations for stage in plan.loop_stages)
        backend.reset_solutions()
        assert backend.plan(model.policy) is plan  # compiled plan survives
        assert all(not stage.solutions for stage in plan.loop_stages)
        again = backend.output_distributions(model.policy, model.ingress_packets)
        assert any(stage.factorizations for stage in plan.loop_stages)
        for packet in model.ingress_packets:
            assert again[packet].close_to(before[packet], tolerance=1e-12)

    def test_clear_cache_keep_plans_resolves_without_recompiling(
        self, models, all_pairs
    ):
        # workers=1: shards run sequentially, so affinity routing is
        # perfectly sticky and no shard is ever stolen onto a replica
        # that would (legitimately) rebuild the plan from its specs —
        # the compile-time comparison below is only deterministic then.
        with AnalysisSession(models=models.values(), workers=1, pool_size=2) as session:
            first = session.query_batch(all_pairs)
            compiled = session.stats()["backend_timings"].get("compile", 0.0)
            session.clear_cache(keep_plans=True)
            again = session.query_batch(all_pairs)
            assert again.cache_hits == 0  # result cache was dropped...
            for value, reference in zip(again.values, first.values):
                assert value == pytest.approx(reference, abs=1e-9)
            # ...but no plan was recompiled (compile time did not move).
            assert session.stats()["backend_timings"].get("compile", 0.0) == compiled

    def test_worker_reports_surface_schur_updates(self, models):
        """A repeated-growth workload shows up in per-replica solver
        counters: after warmup, growth steps are Schur updates and the
        factorization count stays put."""
        dest, model = next(iter(models.items()))
        backend = MatrixBackend(schur_crossover=1e9)  # any growth goes Schur
        with AnalysisSession(model, backend=backend, pool_size=1, workers=1) as session:
            session.query_batch([Query.delivery(model.ingress_packets[0], dest)])
            (report,) = session.pool.worker_reports()
            warm = report["solver"]
            assert warm["factorizations"] >= 1
            assert warm["assembly_rows"] > 0

            session.query_batch(
                [Query.delivery(packet, dest) for packet in model.ingress_packets]
            )
            (report,) = session.pool.worker_reports()
            grown = report["solver"]
            assert grown["schur_updates"] >= 1
            assert grown["factorizations"] == warm["factorizations"]
            # The session-level aggregate mirrors the per-replica counters.
            totals = session.stats()["backend_solver"]
            assert totals["schur_updates"] == grown["schur_updates"]
            assert totals["factorizations"] == grown["factorizations"]

    def test_loop_stage_memoisation(self, models):
        from repro.backends.matrix import _class_sort_key

        model = next(iter(models.values()))
        backend = MatrixBackend()
        backend.output_distributions(model.policy, model.ingress_packets)
        (stage,) = backend.plan(model.policy).loop_stages
        # The incrementally maintained seed order equals a full sort.
        assert stage.seed_order == sorted(stage._seeds, key=_class_sort_key)
        assert all(cls in stage._sort_keys for cls in stage._seeds)
        # Concretisation is memoised per (class, input packet).
        packet = model.ingress_packets[0]
        cls = next(iter(stage.solutions))
        assert stage.concretize(cls, packet) is stage.concretize(cls, packet)


# ---------------------------------------------------------------------------
# Lifecycle and degradation
# ---------------------------------------------------------------------------
class TestLifecycle:
    def test_non_forkable_backend_degrades_to_one_replica(self, models):
        model = next(iter(models.values()))
        with AnalysisSession(model, backend="native", pool_size=4, workers=2) as session:
            assert session.pool.size == 1
            packet = model.ingress_packets[0]
            value = session.query("delivery", packet, model.dest)
            assert value == pytest.approx(
                delivery_probability(model, inputs=[packet]), abs=1e-9
            )

    def test_close_tears_down_forked_replicas_only_plus_owned_base(self, models):
        model = next(iter(models.values()))
        closed: list[int] = []
        shared = MatrixBackend()
        shared.close = lambda: closed.append(0)  # type: ignore[method-assign]
        session = AnalysisSession(model, backend=shared, pool_size=3, workers=1)
        forks = session.pool.replicas[1:]
        for replica in forks:
            replica.backend.close = (  # type: ignore[method-assign]
                lambda index=replica.index: closed.append(index)
            )
        session.close()
        # Caller-supplied base stays open; both forked replicas close.
        assert sorted(closed) == [1, 2]

    def test_closed_pool_rejects_leases(self, models):
        model = next(iter(models.values()))
        session = AnalysisSession(model, pool_size=2, workers=1)
        session.close()
        with pytest.raises(RuntimeError, match="closed"):
            with session.pool.lease():
                pass  # pragma: no cover

    def test_pool_size_validation(self, models):
        model = next(iter(models.values()))
        with pytest.raises(ValueError, match="pool size"):
            AnalysisSession(model, pool_size=0)

    def test_backend_missing_answer_fails_fast(self, models):
        """A backend that drops a requested packet must raise, not spin."""

        class DroppingBackend:
            exact = False

            def __init__(self):
                self.inner = MatrixBackend()

            def output_distributions(self, policy, inputs):
                packets = list(inputs)
                answers = self.inner.output_distributions(policy, packets)
                answers.pop(packets[-1], None)  # violate the contract
                return answers

        model = next(iter(models.values()))
        with AnalysisSession(model, backend=DroppingBackend(), workers=1) as session:
            with pytest.raises(RuntimeError, match="no distribution"):
                session.query_batch(
                    [Query.delivery(p, model.dest) for p in model.ingress_packets[:2]]
                )

    def test_close_drains_active_leases(self, models):
        """close() waits for in-flight leases before tearing backends down."""
        model = next(iter(models.values()))
        session = AnalysisSession(model, pool_size=2, workers=1)
        pool = session.pool
        events: list[str] = []
        release = threading.Event()
        leased = threading.Event()

        def hold():
            with pool.lease():
                leased.set()
                release.wait(timeout=5)
            events.append("released")

        holder = threading.Thread(target=hold)
        holder.start()
        assert leased.wait(timeout=5)

        def close():
            session.close()
            events.append("closed")

        closer = threading.Thread(target=close)
        closer.start()
        time.sleep(0.05)
        assert "closed" not in events  # still draining the held lease
        release.set()
        holder.join(timeout=5)
        closer.join(timeout=5)
        assert events == ["released", "closed"]

    def test_stats_expose_pool(self, models, all_pairs):
        with AnalysisSession(models=models.values(), workers=2, pool_size=2) as session:
            session.query_batch(all_pairs)
            stats = session.stats()
        assert stats["pool"]["size"] == 2
        assert sum(stats["pool"]["leases"]) >= 1
        assert isinstance(stats["pool"]["affinities"], dict)


# ---------------------------------------------------------------------------
# Elastic resizing (the streaming autoscaler's knob)
# ---------------------------------------------------------------------------
class TestResize:
    def test_grow_spawns_independent_replicas(self, models, all_pairs, per_call_values):
        with AnalysisSession(models=models.values(), workers=4, pool_size=1) as session:
            before = session.query_batch(all_pairs).values
            assert session.resize_pool(3) == 3
            assert session.pool_size == 3
            backends = [replica.backend for replica in session.pool.replicas]
            assert len({id(backend) for backend in backends}) == 3
            session.clear_cache(keep_plans=True)
            after = session.query_batch(all_pairs).values
        for value, reference, expected in zip(after, before, per_call_values):
            assert value == pytest.approx(reference, abs=1e-9)
            assert value == pytest.approx(expected, abs=1e-9)

    def test_shrink_retires_tails_and_their_affinities(self, models, all_pairs):
        with AnalysisSession(models=models.values(), workers=1, pool_size=3) as session:
            pool = session.pool
            # workers=1 routes shards sequentially: affinities bind across
            # all three replicas (one destination each).
            session.query_batch(all_pairs, planner="destination")
            assert {pool._affinity[key] for key in pool._affinity} == {0, 1, 2}
            assert session.resize_pool(1) == 1
            assert [replica.index for replica in pool.replicas] == [0]
            # No affinity entry may point at a retired replica index.
            assert all(index == 0 for index in pool._affinity.values())
            # The survivor still answers the whole batch correctly.
            session.clear_cache(keep_plans=True)
            repeat = session.query_batch(all_pairs)
            assert all(report.replica == 0 for report in repeat.shards)

    def test_shrink_waits_for_busy_tail(self, models):
        model = next(iter(models.values()))
        with AnalysisSession(model, workers=1, pool_size=2) as session:
            pool = session.pool
            release = threading.Event()
            leased = threading.Event()
            events: list[str] = []

            def hold_tail():
                with pool.lease_replica(1):
                    leased.set()
                    release.wait(timeout=5)
                events.append("released")

            holder = threading.Thread(target=hold_tail)
            holder.start()
            assert leased.wait(timeout=5)

            def shrink():
                session.resize_pool(1)
                events.append("shrunk")

            shrinker = threading.Thread(target=shrink)
            shrinker.start()
            time.sleep(0.05)
            assert "shrunk" not in events  # the tail lease is still live
            release.set()
            holder.join(timeout=5)
            shrinker.join(timeout=5)
            assert events == ["released", "shrunk"]
            assert pool.size == 1

    def test_resize_validation_and_non_forkable_cap(self, models):
        model = next(iter(models.values()))
        with AnalysisSession(model, workers=1, pool_size=2) as session:
            with pytest.raises(ValueError, match="pool size"):
                session.resize_pool(0)
        # A non-forkable backend cannot grow: resize returns the real size.
        with AnalysisSession(model, backend="native", workers=1, pool_size=1) as session:
            assert session.resize_pool(3) == 1
        session = AnalysisSession(model, workers=1, pool_size=1)
        session.close()
        with pytest.raises(RuntimeError, match="closed"):
            session.resize_pool(2)

    def test_grow_under_concurrent_serving(self, models, all_pairs, per_call_values):
        """resize() during in-flight query_batch calls never corrupts answers."""
        with AnalysisSession(models=models.values(), workers=4, pool_size=1) as session:
            errors: list[Exception] = []
            outputs: list[list[float]] = []

            def serve():
                try:
                    for _ in range(3):
                        session.clear_cache(keep_plans=True)
                        outputs.append(session.query_batch(all_pairs).values)
                except Exception as exc:  # pragma: no cover - failure path
                    errors.append(exc)

            server = threading.Thread(target=serve)
            server.start()
            for size in (2, 3, 2):
                session.resize_pool(size)
            server.join(timeout=60)
            assert not errors
            assert len(outputs) == 3
        for values in outputs:
            for value, expected in zip(values, per_call_values):
                assert value == pytest.approx(expected, abs=1e-9)


# ---------------------------------------------------------------------------
# Supervision: quarantine, probe, in-place respawn, permanent death
# ---------------------------------------------------------------------------
from repro.service.pool import (  # noqa: E402 - section-local imports
    DEAD,
    HEALTHY,
    PoolUnavailable,
    ReplicaFailure,
)


def _wait_until(predicate, timeout: float = 10.0) -> bool:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.005)
    return bool(predicate())


class _StubBackend:
    """A forkable in-memory backend with armable failure behaviour."""

    def __init__(self, family=None, *, pingable=False, forkable=True, fork_delay=0.0):
        self.family = [] if family is None else family
        self.family.append(self)
        self.pingable = pingable
        self.forkable = forkable
        self.fork_delay = fork_delay
        self.closed = False

    def fork(self):
        if not self.forkable:
            raise RuntimeError("fork disabled")
        if self.fork_delay:
            time.sleep(self.fork_delay)
        return _StubBackend(self.family, pingable=self.pingable)

    def ping(self):
        if not self.pingable:
            raise RuntimeError("stub is dead")
        return {"pid": 0}

    def close(self):
        self.closed = True


class _CrashingBackend:
    """Wraps a real backend; raises ReplicaFailure while the bomb is armed.

    The bomb is shared across forks, so "disarm after the first crash"
    models a single worker death with healthy peers, while a bomb that
    never disarms models a pool where every replica keeps dying.
    """

    def __init__(self, inner, bomb):
        self._inner = inner
        self._bomb = bomb

    def fork(self):
        return _CrashingBackend(self._inner.fork(), self._bomb)

    def output_distributions(self, policy, inputs):
        if self._bomb["armed"]:
            if self._bomb.get("once"):
                self._bomb["armed"] = False
            raise ReplicaFailure("injected replica crash", kind="crash")
        return self._inner.output_distributions(policy, inputs)

    def __getattr__(self, name):
        return getattr(self._inner, name)


class TestSupervision:
    def test_failure_respawns_in_place_and_keeps_affinity(self):
        family: list = []
        pool = BackendPool(_StubBackend(family), 2, owns_base=True)
        first = pool.replicas[1].backend
        with pytest.raises(ReplicaFailure):
            with pool.lease(("dest", 7)) as replica:
                bound = replica.index
                raise ReplicaFailure("backend fell over")
        assert _wait_until(lambda: pool.replicas[bound].health == HEALTHY)
        stats = pool.stats()
        assert stats["failures"] == 1
        assert stats["restarts"] == 1
        assert stats["health"] == [HEALTHY, HEALTHY]
        # A fresh backend sits at the same index; the corpse was closed
        # and the affinity binding survived the swap.
        replaced = pool.replicas[bound].backend
        assert replaced is not first or bound == 0
        assert stats["affinities"][("dest", 7)] == bound
        dead = [b for b in family if b.closed]
        assert len(dead) == 1
        pool.close()

    def test_transient_blip_revives_without_respawn(self):
        pool = BackendPool(_StubBackend(pingable=True), 2, owns_base=True)
        survivor = pool.replicas[0].backend
        with pytest.raises(ReplicaFailure):
            with pool.lease_replica(0):
                raise ReplicaFailure("transport blip")
        # The probe answered: same backend object, healthy, no restart.
        assert pool.replicas[0].health == HEALTHY
        assert pool.replicas[0].backend is survivor
        assert pool.failures == 1
        assert pool.restarts == 0
        pool.close()

    def test_timeout_failure_skips_the_probe(self):
        """A watchdog kill is death by definition — even a backend whose
        ping would succeed is respawned, not revived."""
        pool = BackendPool(_StubBackend(pingable=True), 2, owns_base=True)
        victim = pool.replicas[1].backend
        with pytest.raises(ReplicaFailure):
            with pool.lease_replica(1):
                raise ReplicaFailure("hung and killed", kind="timeout")
        assert _wait_until(lambda: pool.replicas[1].health == HEALTHY)
        assert pool.replicas[1].backend is not victim
        assert pool.restarts == 1
        pool.close()

    def test_unrespawnable_pool_goes_dead_and_unavailable(self):
        """When no replacement can be built, the replica dies for good:
        affinities unbind and leases fail typed instead of hanging."""
        backend = _StubBackend(forkable=False)
        backend.fork = None  # wholly unforkable: single-replica pool
        del backend.fork
        pool = BackendPool(backend, 1, owns_base=True)
        with pytest.raises(ReplicaFailure):
            with pool.lease(("dest", 3)):
                raise ReplicaFailure("backend fell over")
        assert _wait_until(lambda: pool.replicas[0].health == DEAD)
        assert pool.stats()["affinities"] == {}
        with pytest.raises(PoolUnavailable):
            with pool.lease():
                pass  # pragma: no cover
        with pytest.raises(ReplicaFailure):
            with pool.lease_replica(0):
                pass  # pragma: no cover
        pool.close()

    def test_lease_each_skips_dead_slots(self):
        family: list = []
        pool = BackendPool(_StubBackend(family), 3, owns_base=True)
        for backend in family:
            backend.forkable = False  # no peer can supply a replacement
        with pytest.raises(ReplicaFailure):
            with pool.lease_replica(1):
                raise ReplicaFailure("backend fell over")
        assert _wait_until(lambda: pool.replicas[1].health == DEAD)
        visited = [replica.index for replica in pool.lease_each()]
        assert visited == [0, 2]
        pool.close()

    def test_double_failure_in_one_lease_quarantines_once(self):
        # fork_delay keeps the respawn in flight while the second failure
        # of the same lease arrives: it must not re-quarantine the slot.
        pool = BackendPool(_StubBackend(fork_delay=0.3), 2, owns_base=True)
        with pytest.raises(ReplicaFailure):
            with pool.lease_replica(1) as replica:
                pool._quarantine(replica, ReplicaFailure("first"))
                raise ReplicaFailure("second")
        assert _wait_until(lambda: pool.replicas[1].health == HEALTHY)
        assert pool.failures == 1
        assert pool.restarts == 1
        pool.close()


class TestSessionRetry:
    def test_crashed_shard_is_retried_transparently(self, models, all_pairs):
        """One replica crash mid-batch: the shard re-runs on a healthy
        replica, answers stay exact, and the retry is counted."""
        model = next(iter(models.values()))
        bomb = {"armed": True, "once": True}
        backend = _CrashingBackend(MatrixBackend(), bomb)
        batch = [Query.delivery(p, model.dest) for p in model.ingress_packets]
        with AnalysisSession(
            model, backend=backend, pool_size=2, workers=1, max_attempts=2
        ) as session:
            result = session.query_batch(batch)
            expected = delivery_probability(model, inputs=[model.ingress_packets[0]])
            assert result.values[0] == pytest.approx(expected, abs=1e-9)
            assert session.retried_shards == 1
            assert session.stats()["retried_shards"] == 1
            assert session.pool.failures == 1

    def test_exhausted_retries_surface_pool_unavailable(self, models):
        model = next(iter(models.values()))
        bomb = {"armed": True}  # never disarms: every replica keeps dying
        backend = _CrashingBackend(MatrixBackend(), bomb)
        with AnalysisSession(
            model, backend=backend, pool_size=2, workers=1, max_attempts=2
        ) as session:
            with pytest.raises(PoolUnavailable, match="retries exhausted"):
                session.query("delivery", model.ingress_packets[0], model.dest)
            assert session.pool.failures >= 2

    def test_max_attempts_validation(self, models):
        model = next(iter(models.values()))
        with pytest.raises(ValueError, match="max_attempts"):
            AnalysisSession(model, max_attempts=0)
