"""Chaos tests: worker crashes, hangs, and dropped pipes must be
invisible to callers (``repro.service.pool`` supervision +
``repro.service.faults`` injection).

Every test here kills real worker processes — the whole module carries
the ``chaos`` marker so CI can run it in its own step, fenced off from
the deterministic suite.
"""

from __future__ import annotations

import asyncio
import os
import signal
import threading
import time

import pytest

from repro.analysis.queries import delivery_probability
from repro.backends import MatrixBackend
from repro.failure.models import independent_failure_program
from repro.network.model import build_model
from repro.routing import downward_failable_ports, ecmp_policy
from repro.service import (
    AnalysisSession,
    Fault,
    FaultPlan,
    PoolUnavailable,
    Query,
    QueryServer,
    StreamClient,
)
from repro.service import faults as faults_module
from repro.service.pool import DEAD, HEALTHY, RESTARTING, SUSPECT
from repro.topology import edge_switches, fat_tree

pytestmark = pytest.mark.chaos


def ecmp_model(topo, dest: int):
    failable = downward_failable_ports(topo)
    return build_model(
        topo,
        routing=ecmp_policy(topo, dest),
        dest=dest,
        failure=independent_failure_program(failable, 1 / 1000),
        failable=failable,
    )


@pytest.fixture(scope="module")
def topo():
    return fat_tree(4)


@pytest.fixture(scope="module")
def all_models(topo):
    """One model per edge destination: the full FatTree k=4 query space."""
    return {dest: ecmp_model(topo, dest) for dest in edge_switches(topo)}


@pytest.fixture(scope="module")
def all_pairs(all_models):
    """The 112-pair all-pairs delivery batch of the acceptance criterion."""
    batch = [
        Query.delivery(packet, dest)
        for dest, model in all_models.items()
        for packet in model.ingress_packets
    ]
    assert len(batch) == 112
    return batch


@pytest.fixture(scope="module")
def per_call_values(all_models, all_pairs):
    """Reference answers from per-call ``repro.analysis`` invocations."""
    with MatrixBackend() as backend:
        return [
            delivery_probability(
                all_models[query.dest], inputs=[query.ingress], backend=backend
            )
            for query in all_pairs
        ]


def wait_until(predicate, timeout: float = 30.0, interval: float = 0.01) -> bool:
    """Poll ``predicate`` until true (respawn threads finish asynchronously)."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return bool(predicate())


# ---------------------------------------------------------------------------
# FaultPlan: grammar and distribution (pure-parent, no processes)
# ---------------------------------------------------------------------------
class TestFaultPlan:
    def test_parse_spec_round_trip(self):
        spec = "kill@1:after=5;delay@all:ms=30;drop@2:after=1;kill@0:exit=3"
        plan = FaultPlan.parse(spec)
        assert len(plan.faults) == 4
        assert plan.spec() == spec
        assert FaultPlan.parse(plan.spec()).spec() == spec

    def test_for_worker_targets_by_index(self):
        plan = FaultPlan.parse("kill@1:after=5;delay@all:ms=30")
        everyone = plan.for_worker(0)
        assert [f.kind for f in everyone.faults] == ["delay"]
        targeted = plan.for_worker(1)
        assert sorted(f.kind for f in targeted.faults) == ["delay", "kill"]

    def test_from_env_and_active(self):
        environ: dict[str, str] = {}
        assert FaultPlan.from_env(environ) is None
        with faults_module.active("kill@0", environ):
            plan = FaultPlan.from_env(environ)
            assert plan is not None and plan.faults[0].kind == "kill"
        assert faults_module.REPRO_FAULTS not in environ

    def test_malformed_specs_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultPlan.parse("explode@1")
        with pytest.raises(ValueError, match="malformed fault option"):
            FaultPlan.parse("kill@1:after")
        with pytest.raises(ValueError, match="unknown fault option"):
            FaultPlan.parse("kill@1:when=now")
        with pytest.raises(ValueError, match="after="):
            Fault("kill", after=-1)

    def test_delay_hook_respects_after_threshold(self):
        fault = Fault("delay", worker=0, after=2, ms=1.0)
        worker = FaultPlan([fault]).for_worker(0)
        started = time.monotonic()
        worker.delay_reply(0)  # below the threshold: no sleep
        worker.delay_reply(1)
        assert time.monotonic() - started < 0.5
        assert worker._armed("delay", 2) is fault


# ---------------------------------------------------------------------------
# The acceptance criterion: SIGKILL mid-batch, answers still exact
# ---------------------------------------------------------------------------
class TestCrashTransparentBatch:
    def test_sigkill_mid_batch_is_invisible(
        self, all_models, all_pairs, per_call_values
    ):
        """SIGKILL one worker while the 112-pair batch is in flight: the
        batch completes with zero caller-visible errors, every answer
        matches per-call ``repro.analysis`` within 1e-9, the pool shows
        the restart and the transparent retry, and the respawned worker
        was fed specs only (0 AST compilations)."""
        with AnalysisSession(
            models=all_models.values(),
            pool_size=4,
            pool_mode="process",
            workers=4,
            max_attempts=3,
        ) as session:
            for dest in all_models:
                session.warm(dest, solve=False)
            pids_before = {h.index: h.pid for h in session.pool.workers()}
            killed: list[int] = []
            stop = threading.Event()

            def killer():
                # Kill the first worker caught mid-lease (busy = serving).
                # If the SIGKILL races a reply that already left the pipe,
                # no failure registers — strike the next busy worker too.
                deadline = time.monotonic() + 60.0
                while time.monotonic() < deadline and not stop.is_set():
                    for replica in session.pool.replicas:
                        if replica.busy and replica.health == HEALTHY:
                            os.kill(replica.backend.pid, signal.SIGKILL)
                            killed.append(replica.index)
                            if wait_until(
                                lambda: session.pool.failures > 0, timeout=2.0
                            ):
                                return
                    time.sleep(0.0005)

            thread = threading.Thread(target=killer)
            thread.start()
            result = session.query_batch(all_pairs)
            stop.set()
            thread.join(timeout=10.0)
            assert killed, "the killer never caught a busy worker"

            for value, expected in zip(result.values, per_call_values):
                assert value == pytest.approx(expected, abs=1e-9)

            assert wait_until(lambda: session.pool.stats()["restarts"] >= 1)
            stats = session.pool.stats()
            assert stats["failures"] >= 1
            assert session.retried_shards >= 1
            assert session.stats()["retried_shards"] >= 1

            # Wait for every slot to heal (probing an undetected corpse
            # quarantines it; the next poll sees the respawned worker).
            def fully_healed():
                reports = session.pool.worker_reports()
                return len(reports) == 4 and all(
                    r["health"] == HEALTHY for r in reports
                )

            assert wait_until(fully_healed)
            # The respawned worker is a fresh process that rebuilt every
            # plan from re-published specs — it never compiled an AST.
            (report,) = [
                r for r in session.pool.worker_reports() if r["index"] == killed[0]
            ]
            assert report["health"] == HEALTHY
            assert report["pid"] != pids_before[killed[0]]
            assert report["ast_compilations"] == 0
            assert report["plans"] >= 1


# ---------------------------------------------------------------------------
# Deterministic injected faults (REPRO_FAULTS)
# ---------------------------------------------------------------------------
class TestInjectedFaults:
    def test_injected_kill_recovers(
        self, all_models, all_pairs, per_call_values, inject_faults
    ):
        """Worker 1 dies on its third query request — on every incarnation
        (the respawn re-reads the plan) — and the batch still answers."""
        inject_faults("kill@1:after=2")
        with AnalysisSession(
            models=all_models.values(),
            pool_size=2,
            pool_mode="process",
            workers=2,
            max_attempts=3,
        ) as session:
            result = session.query_batch(all_pairs)
            for value, expected in zip(result.values, per_call_values):
                assert value == pytest.approx(expected, abs=1e-9)
            assert session.retried_shards >= 1
            assert session.pool.failures >= 1
            assert wait_until(lambda: session.pool.stats()["restarts"] >= 1)

    def test_dropped_pipe_is_retried(
        self, all_models, all_pairs, per_call_values, inject_faults
    ):
        """A worker closing its pipe mid-protocol reads as a crash."""
        inject_faults("drop@0:after=1")
        with AnalysisSession(
            models=all_models.values(),
            pool_size=2,
            pool_mode="process",
            workers=2,
            max_attempts=3,
        ) as session:
            result = session.query_batch(all_pairs)
            for value, expected in zip(result.values, per_call_values):
                assert value == pytest.approx(expected, abs=1e-9)
            assert session.pool.failures >= 1
            assert session.retried_shards >= 1

    def test_watchdog_kills_hung_worker(self, all_models, inject_faults):
        """A worker stalling past ``shard_timeout`` is killed and replaced;
        the stalled shard is retried on the healthy replica."""
        inject_faults("delay@0:ms=30000")
        model = next(iter(all_models.values()))
        batch = [Query.delivery(p, model.dest) for p in model.ingress_packets]
        with AnalysisSession(
            model,
            pool_size=2,
            pool_mode="process",
            workers=1,
            shard_timeout=2.0,
            max_attempts=3,
        ) as session:
            started = time.monotonic()
            result = session.query_batch(batch)
            elapsed = time.monotonic() - started
            expected = delivery_probability(model, inputs=[model.ingress_packets[0]])
            assert result.values[0] == pytest.approx(expected, abs=1e-9)
            # The watchdog fired (we did not sit out the 30 s stall)...
            assert elapsed < 25.0
            stats = session.pool.stats()
            assert stats["failures"] >= 1
            assert session.retried_shards >= 1
            # ...and the timeout failure is typed as such.
            failed = [r for r in session.pool.replicas if r.failures]
            assert failed
            assert any("within" in (r.last_error or "") for r in failed)

    def test_every_replica_dying_raises_pool_unavailable(
        self, all_models, inject_faults
    ):
        """When every incarnation of every worker dies, retries exhaust
        into the typed ``PoolUnavailable`` — not a hang, not a bare crash."""
        inject_faults("kill@all:after=0")
        model = next(iter(all_models.values()))
        with AnalysisSession(
            model,
            pool_size=2,
            pool_mode="process",
            workers=1,
            max_attempts=2,
        ) as session:
            with pytest.raises(PoolUnavailable, match="retries exhausted"):
                session.query("delivery", model.ingress_packets[0], model.dest)
            assert session.pool.failures >= 2

    def test_exit_code_travels_into_the_failure(self, all_models, inject_faults):
        inject_faults("kill@all:after=0:exit=42")
        model = next(iter(all_models.values()))
        with AnalysisSession(
            model, pool_size=1, pool_mode="process", workers=1, max_attempts=1
        ) as session:
            with pytest.raises(PoolUnavailable) as excinfo:
                session.query("delivery", model.ingress_packets[0], model.dest)
            failure = excinfo.value.__cause__
            assert failure is not None and failure.exit_code == 42


# ---------------------------------------------------------------------------
# Introspection while the pool is healing
# ---------------------------------------------------------------------------
class TestHealingIntrospection:
    def test_worker_reports_survive_a_dead_replica(self, all_models):
        """worker_reports() reports a killed replica's status instead of
        raising, and the pool heals underneath it."""
        model = next(iter(all_models.values()))
        with AnalysisSession(
            model, pool_size=2, pool_mode="process", workers=1, max_attempts=3
        ) as session:
            session.warm(model.dest, solve=False)
            victim = session.pool.workers()[1]
            old_pid = victim.pid
            os.kill(old_pid, signal.SIGKILL)
            wait_until(lambda: not victim._process.is_alive(), timeout=10.0)

            reports = session.pool.worker_reports()
            assert [r["index"] for r in reports] == [0, 1]
            assert reports[0]["health"] == HEALTHY
            probed = reports[1]
            # The probe either caught the corpse (status report) or the
            # respawn already healed the slot (fresh pid): both are fine,
            # neither raises.
            if probed["health"] == HEALTHY:
                assert probed["pid"] != old_pid
            else:
                assert probed["health"] in (SUSPECT, RESTARTING, DEAD)
                assert probed["exit_code"] == -signal.SIGKILL

            # The pool heals: the slot comes back healthy with a new worker
            # and keeps answering queries.
            assert wait_until(
                lambda: session.pool.replicas[1].health == HEALTHY, timeout=30.0
            )
            expected = delivery_probability(model, inputs=[model.ingress_packets[0]])
            value = session.query("delivery", model.ingress_packets[0], model.dest)
            assert value == pytest.approx(expected, abs=1e-9)
            assert session.pool.workers()[1].pid != old_pid

    def test_cli_reports_supervision_counters(self, capsys, inject_faults, tmp_path):
        """The batch CLI prints the supervision summary when faults fired."""
        from repro.service.cli import main as service_main

        inject_faults("kill@1:after=0")
        out = tmp_path / "results.json"
        code = service_main(
            [
                "--topology",
                "fattree:4",
                "--scheme",
                "ecmp",
                "--dest",
                "1",
                "--dest",
                "2",
                "--all-pairs",
                "--workers",
                "2",
                "--pool-size",
                "2",
                "--pool-mode",
                "process",
                "--shard-attempts",
                "3",
                "--output",
                str(out),
            ]
        )
        assert code == 0
        printed = capsys.readouterr().out
        assert "supervision:" in printed
        assert "transparently retried" in printed


# ---------------------------------------------------------------------------
# End to end: the streaming front end over a healing pool
# ---------------------------------------------------------------------------
class TestStreamingRecovery:
    def test_killed_worker_surfaces_as_retryable_and_client_recovers(
        self, all_models, all_pairs, per_call_values, inject_faults
    ):
        """A worker that keeps dying under streamed queries is invisible:
        session-level retry, coalescer isolation, and the client's
        retry-with-backoff absorb every crash."""
        # Every incarnation of worker 0 serves one query request, then
        # dies on its next one — a steady stream of mid-serve crashes.
        inject_faults("kill@0:after=1")
        queries = all_pairs[:24]
        expected = per_call_values[:24]

        def wire(query):
            return {
                "kind": query.kind,
                "ingress": [query.ingress["sw"], query.ingress["pt"]],
                "dest": query.dest,
            }

        async def run(session):
            # window=0: no coalescing, so every query is its own shard
            # request and worker 0's kill threshold arms quickly.
            async with QueryServer(session, window=0.0) as server:
                conn = await StreamClient.connect("127.0.0.1", server.port)
                replies = await asyncio.gather(
                    *[conn.request(wire(query), retries=4) for query in queries]
                )
                stats = (await conn.request({"op": "stats"}))["stats"]
                await conn.aclose()
                return replies, stats

        with AnalysisSession(
            models=all_models.values(),
            pool_size=2,
            pool_mode="process",
            workers=2,
            max_attempts=3,
        ) as session:
            replies, stats = asyncio.run(run(session))

        # Zero caller-visible errors: every crash was absorbed below the
        # wire (transparent retry) or at the client (backoff on a
        # retryable ``unavailable``) — never surfaced as a failure.
        for query, reply, value in zip(queries, replies, expected):
            assert "error" not in reply, (query, reply)
            assert reply["value"] == pytest.approx(value, abs=1e-9)
        assert stats["pool"]["failures"] >= 1
        assert stats["retried_shards"] >= 1


# ---------------------------------------------------------------------------
# Remote hosts: host death, partitions, garbled frames, wire stalls
# ---------------------------------------------------------------------------
class TestRemoteHostFailover:
    def test_sigkill_host_daemon_mid_batch_is_invisible(
        self, all_models, all_pairs, per_call_values
    ):
        """The remote acceptance criterion: a two-host deployment loses an
        entire host daemon (SIGKILL) mid-way through the 112-pair batch —
        zero caller-visible errors, every answer within 1e-9 of per-call
        analysis, at least one host failover recorded in pool stats and
        visible as trace events, and the surviving workers (including the
        failed-over ones) report 0 AST compilations."""
        from repro.service.host import start_host_process

        daemon_a, addr_a = start_host_process(workers=2)
        daemon_b, addr_b = start_host_process(workers=2)
        hosts = [f"{addr_a[0]}:{addr_a[1]}", f"{addr_b[0]}:{addr_b[1]}"]
        try:
            with AnalysisSession(
                models=all_models.values(),
                pool_size=4,
                pool_mode="remote",
                hosts=hosts,
                workers=4,
                max_attempts=4,
                telemetry=True,
                remote_options={
                    "heartbeat_interval": 0.1,
                    "reconnect_backoff": 0.05,
                    "connect_timeout": 2.0,
                },
            ) as session:
                for dest in all_models:
                    session.warm(dest, solve=False)
                killed = threading.Event()

                def killer():
                    # Strike once a replica on host A is busy serving.
                    deadline = time.monotonic() + 60.0
                    while time.monotonic() < deadline and not killed.is_set():
                        for replica in session.pool.replicas:
                            busy_on_a = (
                                replica.busy
                                and replica.health == HEALTHY
                                and getattr(replica.backend, "host", "") == hosts[0]
                            )
                            if busy_on_a:
                                os.kill(daemon_a.pid, signal.SIGKILL)
                                killed.set()
                                return
                        time.sleep(0.0005)

                thread = threading.Thread(target=killer)
                thread.start()
                result = session.query_batch(all_pairs)
                thread.join(timeout=10.0)
                assert killed.is_set(), "the killer never caught host A busy"

                # Zero caller-visible errors, exact answers.
                for value, expected in zip(result.values, per_call_values):
                    assert value == pytest.approx(expected, abs=1e-9)

                # Host failover is recorded in stats...
                assert wait_until(
                    lambda: session.pool.stats()["failovers"] >= 1, timeout=30.0
                )
                stats = session.pool.stats()
                assert stats["failures"] >= 1
                # ...the orphaned slots re-homed onto the survivor (or a
                # local fallback when the survivor was also refusing)...
                assert wait_until(
                    lambda: hosts[0]
                    not in [
                        r["host"]
                        for r in session.pool.worker_reports()
                        if r["health"] == HEALTHY
                    ],
                    timeout=30.0,
                )
                # ...and the partition/reconnect/failover story is in the
                # telemetry timeline as spans.
                span_names = {
                    record["name"] for record in session.telemetry.tracer.spans()
                }
                assert "host-failover" in span_names or "remote-local-fallback" in span_names

                # Failed-over workers rebuilt plans from re-shipped specs:
                # still 0 AST compilations, across reconnects.
                healthy = [
                    r
                    for r in session.pool.worker_reports()
                    if r["health"] == HEALTHY
                ]
                assert healthy
                assert all(r["ast_compilations"] == 0 for r in healthy)
                assert any(r["reconnects"] >= 1 for r in healthy)
        finally:
            for daemon in (daemon_a, daemon_b):
                if daemon.is_alive():
                    daemon.kill()
                daemon.join(timeout=10.0)

    def test_all_hosts_gone_degrades_to_local_fallback(self, all_models):
        """With every remote host dead, the pool degrades to local worker
        processes instead of failing the caller."""
        from repro.service.host import start_host_process

        daemon, addr = start_host_process(workers=2)
        model = next(iter(all_models.values()))
        with AnalysisSession(
            model,
            pool_size=2,
            pool_mode="remote",
            hosts=[f"{addr[0]}:{addr[1]}"],
            workers=2,
            max_attempts=4,
            remote_options={
                "heartbeat_interval": 0.1,
                "reconnect_attempts": 2,
                "reconnect_backoff": 0.02,
                "connect_timeout": 1.0,
            },
        ) as session:
            session.warm(model.dest, solve=False)
            os.kill(daemon.pid, signal.SIGKILL)
            daemon.join(timeout=10.0)
            expected = delivery_probability(model, inputs=[model.ingress_packets[0]])
            value = session.query("delivery", model.ingress_packets[0], model.dest)
            assert value == pytest.approx(expected, abs=1e-9)
            assert wait_until(
                lambda: session.pool.stats()["local_fallbacks"] >= 1, timeout=30.0
            )
            assert wait_until(
                lambda: any(
                    r["health"] == HEALTHY and r["host"] == "local"
                    for r in session.pool.worker_reports()
                ),
                timeout=30.0,
            )

    def test_all_hosts_gone_without_fallback_is_pool_unavailable(self, all_models):
        """local_fallback=False keeps the PoolUnavailable contract: retries
        exhaust into the typed error, never a hang."""
        from repro.service.host import start_host_process

        daemon, addr = start_host_process(workers=2)
        model = next(iter(all_models.values()))
        with AnalysisSession(
            model,
            pool_size=2,
            pool_mode="remote",
            hosts=[f"{addr[0]}:{addr[1]}"],
            workers=2,
            max_attempts=2,
            remote_options={
                "heartbeat_interval": 0.1,
                "reconnect_attempts": 1,
                "reconnect_backoff": 0.02,
                "connect_timeout": 0.5,
                "local_fallback": False,
            },
        ) as session:
            session.warm(model.dest, solve=False)
            os.kill(daemon.pid, signal.SIGKILL)
            daemon.join(timeout=10.0)
            with pytest.raises(PoolUnavailable):
                session.query("delivery", model.ingress_packets[0], model.dest)


class TestRemoteNetworkFaults:
    """The REPRO_FAULTS network kinds, injected at the host relay."""

    def _remote_session(self, models, hosts, **remote_options):
        options = {
            "heartbeat_interval": 0.1,
            "suspect_after": 3.0,
            "condemn_after": 8.0,
            "reconnect_backoff": 0.05,
        }
        options.update(remote_options)
        return AnalysisSession(
            models=models.values(),
            pool_size=2,
            pool_mode="remote",
            hosts=hosts,
            workers=2,
            max_attempts=4,
            telemetry=True,
            remote_options=options,
        )

    def test_partition_blackhole_detected_and_reconnected(
        self, all_models, all_pairs, per_call_values, inject_faults
    ):
        """A relay that stops reading/acking/heartbeating replica 0 for
        1.5 s trips the missed-heartbeat → condemn path; the replica is
        torn down mid-partition, reconnected, and the batch is exact."""
        from repro.service import HostServer

        inject_faults("partition@0:ms=1500")
        with HostServer(workers=2, heartbeat_interval=0.1).start() as server:
            hosts = [f"{server.address[0]}:{server.port}"]
            with self._remote_session(all_models, hosts) as session:
                result = session.query_batch(all_pairs)
                for value, expected in zip(result.values, per_call_values):
                    assert value == pytest.approx(expected, abs=1e-9)
                assert wait_until(
                    lambda: session.pool.stats()["remote_reconnects"] >= 1,
                    timeout=30.0,
                )
                stats = session.pool.stats()
                assert stats["failures"] >= 1
                # The monitor counted misses before condemning...
                assert sum(stats["heartbeat_misses"]) >= 1 or any(
                    r["heartbeat_misses"] >= 1
                    for r in session.pool.worker_reports()
                )
                # ...and the partition is on the telemetry timeline.
                span_names = {
                    record["name"] for record in session.telemetry.tracer.spans()
                }
                assert "heartbeat-missed" in span_names
                assert "remote-reconnect" in span_names

    def test_garbled_reply_frame_is_transport_failure_then_retry(
        self, all_models, all_pairs, per_call_values, inject_faults
    ):
        """One corrupted reply frame (valid header, failing checksum) must
        read as ReplicaFailure(kind="transport"), not a pickle error; the
        shard retries and the batch stays exact."""
        from repro.service import HostServer

        inject_faults("garble@0")
        with HostServer(workers=2, heartbeat_interval=0.1).start() as server:
            hosts = [f"{server.address[0]}:{server.port}"]
            with self._remote_session(all_models, hosts) as session:
                result = session.query_batch(all_pairs)
                for value, expected in zip(result.values, per_call_values):
                    assert value == pytest.approx(expected, abs=1e-9)
                assert session.pool.failures >= 1
                assert session.retried_shards >= 1
                failed = [r for r in session.pool.replicas if r.failures]
                assert any(
                    "corrupt frame" in (r.last_error or "") for r in failed
                )

    def test_stalled_wire_slows_but_stays_exact(self, all_models, inject_faults):
        """A transport-layer stall delays replies without corrupting
        anything: no failures, exact answers, visibly slower."""
        from repro.service import HostServer

        inject_faults("stall@all:ms=250")
        model = next(iter(all_models.values()))
        models = {model.dest: model}
        with HostServer(workers=2, heartbeat_interval=0.1).start() as server:
            hosts = [f"{server.address[0]}:{server.port}"]
            with self._remote_session(models, hosts) as session:
                started = time.monotonic()
                expected = delivery_probability(
                    model, inputs=[model.ingress_packets[0]]
                )
                value = session.query(
                    "delivery", model.ingress_packets[0], model.dest
                )
                elapsed = time.monotonic() - started
                assert value == pytest.approx(expected, abs=1e-9)
                assert elapsed >= 0.25
                assert session.pool.failures == 0
