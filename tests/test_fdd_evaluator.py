"""Tests for the compiled-body fast path (:mod:`repro.core.fdd.evaluator`).

The central claim: for every eligible body and every concrete packet,
``CompiledBody.run_packet`` computes exactly the distribution the AST
interpreter computes (and, transitively via the existing compiler tests,
the reference denotational semantics).  Property tests generate random
guarded programs to check this; unit tests cover lazy per-branch
compilation, spine specialization, worker-spec round-trips, and the
deep-body no-recursion guarantee.
"""

from __future__ import annotations

import pickle
import sys
from fractions import Fraction

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import syntax as s
from repro.core.compiler import Compiler
from repro.core.distributions import Dist
from repro.core.fdd.evaluator import CompiledBody, _dispatch_table, _specialize_spine
from repro.core.fdd.node import FddManager
from repro.core.interpreter import Interpreter
from repro.core.packet import DROP, Packet, PacketUniverse
from repro.core.semantics.denotational import eval_policy

FIELDS = ["f", "g"]
VALUES = [0, 1, 2]
UNIVERSE = PacketUniverse({"f": VALUES, "g": VALUES})

tests = st.builds(s.test, st.sampled_from(FIELDS), st.sampled_from(VALUES))
assigns = st.builds(s.assign, st.sampled_from(FIELDS), st.sampled_from(VALUES))


def predicates(depth: int = 2):
    base = st.one_of(tests, st.just(s.skip()), st.just(s.drop()))
    if depth == 0:
        return base
    sub = predicates(depth - 1)
    return st.one_of(
        base,
        st.builds(lambda a, b: s.conj(a, b), sub, sub),
        st.builds(lambda a, b: s.disj(a, b), sub, sub),
        st.builds(s.neg, sub),
    )


def bodies(depth: int = 2):
    """Random loop-free guarded programs (all eligible for compilation)."""
    base = st.one_of(assigns, predicates(1))
    if depth == 0:
        return base
    sub = bodies(depth - 1)
    probability = st.sampled_from([Fraction(1, 4), Fraction(1, 2), Fraction(3, 4)])
    return st.one_of(
        base,
        st.builds(lambda a, b: s.seq(a, b), sub, sub),
        st.builds(
            lambda a, b, r: s.choice((a, r), (b, 1 - r)), sub, sub, probability
        ),
        st.builds(s.ite, predicates(1), sub, sub),
        st.builds(
            lambda g1, b1, b2: s.case([(g1, b1)], b2),
            tests, sub, sub,
        ),
    )


def compile_body(body: s.Policy, exact: bool) -> CompiledBody:
    compiled = CompiledBody.try_compile(
        body, Compiler(manager=FddManager()), exact=exact
    )
    assert compiled is not None, f"loop-free guarded body must be eligible: {body!r}"
    return compiled


def reference_output(policy: s.Policy, packet: Packet):
    dist = eval_policy(policy, frozenset([packet]), max_star_iterations=400, tolerance=1e-13)
    return dist.map(lambda outputs: next(iter(outputs)) if outputs else DROP)


class TestAgreementProperties:
    @settings(max_examples=60, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(body=bodies(2), packet=st.sampled_from(list(UNIVERSE.packets)))
    def test_compiled_matches_interpreter_and_reference_exact(self, body, packet):
        compiled = compile_body(body, exact=True)
        via_compiled = compiled.run_packet(packet)
        via_interp = Interpreter(exact=True, compile_bodies=False).run_packet(body, packet)
        assert via_compiled == via_interp
        assert via_compiled.total_mass() == 1
        assert via_compiled.close_to(reference_output(body, packet), tolerance=1e-9)

    @settings(max_examples=60, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(body=bodies(2), packet=st.sampled_from(list(UNIVERSE.packets)))
    def test_compiled_float_path_matches_interpreter(self, body, packet):
        compiled = compile_body(body, exact=False)
        via_compiled = compiled.run_packet(packet)
        via_interp = Interpreter(exact=True, compile_bodies=False).run_packet(body, packet)
        assert via_compiled.close_to(via_interp, tolerance=1e-9)
        assert float(via_compiled.total_mass()) == pytest.approx(1.0, abs=1e-9)

    @settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(body=bodies(2), packet=st.sampled_from(list(UNIVERSE.packets)))
    def test_guarded_loop_agrees_through_interpreter(self, body, packet):
        """Full-loop check: compiled-body exploration vs pure AST interpretation."""
        flip = s.choice((s.assign("f", 2), Fraction(1, 2)), (s.skip(), Fraction(1, 2)))
        loop = s.while_do(s.neg(s.test("f", 2)), s.seq(body, flip))
        fast = Interpreter(exact=True).run_packet(loop, packet)
        slow = Interpreter(exact=True, compile_bodies=False).run_packet(loop, packet)
        assert fast == slow


class TestEligibility:
    def test_nested_loop_is_ineligible(self):
        body = s.seq(s.assign("f", 1), s.while_do(s.test("g", 0), s.assign("g", 1)))
        assert CompiledBody.try_compile(body, Compiler()) is None

    def test_star_is_ineligible(self):
        assert CompiledBody.try_compile(s.star(s.assign("f", 1)), Compiler()) is None

    def test_union_is_ineligible_even_over_predicates(self):
        body = s.Union((s.test("f", 1), s.test("f", 2)))
        assert CompiledBody.try_compile(body, Compiler()) is None

    def test_interpreter_falls_back_on_nested_loops(self):
        inner = s.while_do(s.test("g", 0), s.choice(
            (s.assign("g", 1), Fraction(1, 2)), (s.skip(), Fraction(1, 2))
        ))
        outer = s.while_do(s.neg(s.test("f", 1)), s.seq(inner, s.assign("f", 1)))
        interp = Interpreter(exact=True)
        out = interp.run_packet(outer, Packet({"f": 0, "g": 0}))
        assert out == Dist.point(Packet({"f": 1, "g": 1}))
        stats = interp.loop_stats()
        # The outer body contains a loop and falls back to interpretation;
        # the inner body is loop-free and still takes the fast path.
        assert stats["loops"] == 2
        assert stats["compiled_loops"] == 1


class TestLazyPerBranchCompilation:
    def make_case_body(self, n: int = 50) -> s.Policy:
        return s.case(
            [(s.test("sw", i), s.assign("sw", i + 1)) for i in range(n)], s.drop()
        )

    def test_only_visited_branches_compile(self):
        compiled = CompiledBody.try_compile(self.make_case_body(), Compiler())
        assert compiled is not None
        assert compiled.stats()["compiled_branches"] == 0
        compiled.run_packet(Packet({"sw": 3}))
        assert compiled.stats()["compiled_branches"] == 1
        compiled.run_packet(Packet({"sw": 3}))
        assert compiled.stats()["compiled_branches"] == 1
        compiled.run_packet(Packet({"sw": 7}))
        assert compiled.stats()["compiled_branches"] == 2

    def test_unmatched_value_uses_default(self):
        compiled = CompiledBody.try_compile(self.make_case_body(), Compiler())
        assert compiled.run_packet(Packet({"sw": 999})) == Dist.point(DROP)
        assert compiled.run_packet(Packet({"pt": 1})) == Dist.point(DROP)

    def test_duplicate_guards_keep_first_branch(self):
        policy = s.case(
            [(s.test("sw", 1), s.assign("pt", 10)), (s.test("sw", 1), s.assign("pt", 99))],
            s.drop(),
        )
        compiled = CompiledBody.try_compile(policy, Compiler())
        out = compiled.run_packet(Packet({"sw": 1}))
        assert out == Dist.point(Packet({"sw": 1, "pt": 10}))


class TestSpineSpecialization:
    def network_like_body(self) -> s.Policy:
        """failure-case ; routing-case ; topology-case ; flag reset."""
        pr = Fraction(1, 100)
        failure = s.case(
            [
                (s.test("sw", i), s.choice((s.assign("up1", 0), pr), (s.assign("up1", 1), 1 - pr)))
                for i in (1, 2)
            ],
            s.skip(),
        )
        routing = s.case(
            [(s.test("sw", i), s.assign("pt", i)) for i in (1, 2)], s.drop()
        )
        topo = s.case(
            [
                (s.test("sw", 1), s.ite(s.test("up1", 1), s.assign("sw", 2), s.drop())),
                (s.test("sw", 2), s.ite(s.test("up1", 1), s.assign("sw", 3), s.drop())),
            ],
            s.drop(),
        )
        return s.seq(failure, routing, topo, s.assign("up1", 1))

    def test_spine_detected(self):
        body = self.network_like_body()
        spine = _specialize_spine(list(body.parts))
        assert spine is not None
        field, table, _default = spine
        assert field == "sw"
        assert sorted(table) == [1, 2]

    def test_spine_rows_match_interpreter(self):
        body = self.network_like_body()
        compiled = CompiledBody.try_compile(body, Compiler(), exact=True)
        assert compiled is not None
        assert compiled.stats()["case_segments"] == 1
        interp = Interpreter(exact=True, compile_bodies=False)
        for pk in [Packet({"sw": 1, "pt": 0, "up1": 1}), Packet({"sw": 2, "pt": 0, "up1": 1}),
                   Packet({"sw": 3, "pt": 0, "up1": 1})]:
            assert compiled.run_packet(pk) == interp.run_packet(body, pk)

    def test_assignment_blocks_later_specialization(self):
        # The first case assigns sw, so the second must not specialize on
        # the *input* switch value.
        move = s.case([(s.test("sw", 1), s.assign("sw", 2))], s.skip())
        mark = s.case([(s.test("sw", 2), s.assign("seen", 1))], s.assign("seen", 0))
        body = s.seq(move, mark)
        compiled = CompiledBody.try_compile(body, Compiler(), exact=True)
        assert compiled is not None
        out = compiled.run_packet(Packet({"sw": 1, "seen": 0}))
        assert out == Dist.point(Packet({"sw": 2, "seen": 1}))
        out = Interpreter(exact=True).run_packet(body, Packet({"sw": 1, "seen": 0}))
        assert out == Dist.point(Packet({"sw": 2, "seen": 1}))


class TestWorkerSpecs:
    def body(self) -> s.Policy:
        pr = Fraction(1, 8)
        return s.seq(
            s.case(
                [
                    (s.test("sw", i), s.choice(
                        (s.assign("sw", i + 1), 1 - pr), (s.drop(), pr)
                    ))
                    for i in range(4)
                ],
                s.drop(),
            ),
            s.assign("pt", 7),
        )

    @pytest.mark.parametrize("exact", [False, True])
    def test_spec_round_trip_preserves_rows(self, exact):
        compiled = CompiledBody.try_compile(self.body(), Compiler(), exact=exact)
        spec = pickle.loads(pickle.dumps(compiled.to_spec()))
        rebuilt = CompiledBody.from_spec(spec)
        for value in range(5):
            pk = Packet({"sw": value, "pt": 0})
            assert rebuilt.run_packet(pk) == compiled.run_packet(pk)

    def test_spec_preserves_exact_weights(self):
        compiled = CompiledBody.try_compile(self.body(), Compiler(), exact=True)
        rebuilt = CompiledBody.from_spec(compiled.to_spec())
        out = rebuilt.run_packet(Packet({"sw": 0, "pt": 0}))
        assert all(isinstance(prob, Fraction) for _, prob in out.items())

    def test_unknown_spec_tag_rejected(self):
        with pytest.raises(ValueError):
            CompiledBody.from_spec(("bogus/v9", False, (), ()))


class TestDeepBodies:
    def test_wide_case_body_needs_no_recursion(self):
        branches = [(s.test("sw", i), s.assign("sw", i + 1)) for i in range(600)]
        body = s.seq(s.case(branches, s.drop()), s.case(branches, s.drop()))
        compiled = CompiledBody.try_compile(body, Compiler())
        limit = sys.getrecursionlimit()
        sys.setrecursionlimit(150)
        try:
            out = compiled.run_packet(Packet({"sw": 5}))
        finally:
            sys.setrecursionlimit(limit)
        assert out == Dist.point(Packet({"sw": 7}))


class TestDispatchTable:
    def test_mixed_fields_not_dispatchable(self):
        policy = s.case(
            [(s.test("sw", 1), s.skip()), (s.test("pt", 1), s.skip())], s.drop()
        )
        assert _dispatch_table(policy) is None

    def test_compound_guard_not_dispatchable(self):
        policy = s.case(
            [(s.conj(s.test("sw", 1), s.test("pt", 1)), s.skip())], s.drop()
        )
        assert _dispatch_table(policy) is None
