"""Tests for the analysis helpers and the exact-inference baseline."""

from fractions import Fraction

import pytest

from repro.analysis import (
    delivery_probability,
    expected_hop_count,
    expected_value,
    field_distribution,
    hop_count_cdf,
    hop_count_distribution,
    output_distribution,
)
from repro.analysis.latency import hop_count_series
from repro.analysis.resilience import (
    compare_schemes,
    format_refinement_table,
    format_resilience_table,
    refinement_table,
    resilience_table,
)
from repro.baselines import ExactInferenceBaseline
from repro.baselines.exact_inference import UnrollLimitExceeded
from repro.core import syntax as s
from repro.core.interpreter import Interpreter
from repro.core.packet import DROP, Packet
from repro.routing import ecmp_policy, f10_model
from repro.network.model import build_model
from repro.topology import ab_fat_tree, chain_model


@pytest.fixture(scope="module")
def abft():
    return ab_fat_tree(4)


@pytest.fixture(scope="module")
def ecmp_model(abft):
    return build_model(abft, ecmp_policy(abft, 1), dest=1, count_hops=True)


class TestQueries:
    def test_delivery_probability_of_failure_free_model(self, ecmp_model):
        assert delivery_probability(ecmp_model) == pytest.approx(1.0)

    def test_delivery_probability_requires_predicate_for_bare_policies(self):
        with pytest.raises(ValueError):
            delivery_probability(s.assign("sw", 1))

    def test_output_distribution_uniform_over_ingress(self, ecmp_model):
        dist = output_distribution(ecmp_model)
        assert float(dist.total_mass()) == pytest.approx(1.0)

    def test_field_distribution(self, ecmp_model):
        dist = field_distribution(output_distribution(ecmp_model), "sw")
        assert float(dist(1)) == pytest.approx(1.0)

    def test_expected_value_conditioning(self):
        dist = Interpreter().run(
            s.choice((s.assign("hops", 2), 0.5), (s.drop(), 0.5)), Packet({"hops": 0})
        )
        assert expected_value(dist, lambda p: p["hops"]) == pytest.approx(2.0)

    def test_expected_value_without_mass_raises(self):
        dist = Interpreter().run(s.drop(), Packet({}))
        with pytest.raises(ZeroDivisionError):
            expected_value(dist, lambda p: 1)


class TestLatency:
    def test_hop_counter_required(self, abft):
        model = build_model(abft, ecmp_policy(abft, 1), dest=1)
        with pytest.raises(ValueError):
            hop_count_cdf(model)

    def test_failure_free_cdf_saturates_at_one(self, ecmp_model):
        cdf = hop_count_cdf(ecmp_model)
        assert cdf[max(cdf)] == pytest.approx(1.0)
        assert cdf[4] == pytest.approx(1.0)  # all shortest paths are <= 4 hops

    def test_cdf_is_monotone(self, ecmp_model):
        cdf = hop_count_cdf(ecmp_model)
        values = [cdf[h] for h in sorted(cdf)]
        assert values == sorted(values)

    def test_expected_hop_count_between_two_and_four(self, ecmp_model):
        expected = expected_hop_count(ecmp_model)
        assert 2.0 <= expected <= 4.0

    def test_hop_count_distribution_marks_drops_as_none(self, abft):
        model = f10_model(abft, 1, scheme="f10_0", failure_probability=0.5, count_hops=True)
        dist = hop_count_distribution(model)
        assert None in dist.support()

    def test_hop_count_series_labels(self, ecmp_model):
        series = hop_count_series({"ecmp": ecmp_model}, max_hops=6)
        assert set(series) == {"ecmp"}


class TestResilienceTables:
    def factory(self, abft):
        def build(scheme: str, k: int | None):
            return f10_model(abft, 1, scheme=scheme, failure_probability=0.25, max_failures=k)

        return build

    def test_resilience_table_matches_figure_11b(self, abft):
        table = resilience_table(self.factory(abft), ["f10_0", "f10_3"], [0, 1])
        assert table["f10_0"] == {0: True, 1: False}
        assert table["f10_3"] == {0: True, 1: True}

    def test_format_resilience_table(self, abft):
        table = resilience_table(self.factory(abft), ["f10_0"], [0, 1])
        text = format_resilience_table(table)
        assert "✓" in text and "✗" in text

    def test_refinement_table_and_formatting(self, abft):
        table = refinement_table(self.factory(abft), [("f10_0", "f10_3")], [0, 1])
        assert table[("f10_0", "f10_3")][0] == "≡"
        assert table[("f10_0", "f10_3")][1] == "<"
        assert "f10_0 vs f10_3" in format_refinement_table(table)

    def test_compare_schemes_pairwise(self, abft):
        factory = self.factory(abft)
        models = {"f10_0": factory("f10_0", 1), "f10_3": factory("f10_3", 1)}
        results = compare_schemes(models)
        assert results[("f10_0", "f10_3")] == "<"


class TestExactInferenceBaseline:
    def test_simple_choice(self):
        baseline = ExactInferenceBaseline()
        policy = s.choice((s.assign("f", 1), Fraction(1, 4)), (s.assign("f", 2), Fraction(3, 4)))
        dist = baseline.output_distribution(policy, Packet({"f": 0}))
        assert float(dist(Packet({"f": 1}))) == pytest.approx(0.25)

    def test_loop_unrolling_converges(self):
        baseline = ExactInferenceBaseline()
        loop = s.while_do(s.test("f", 0), s.choice((s.assign("f", 1), 0.5), (s.skip(), 0.5)))
        dist = baseline.output_distribution(loop, Packet({"f": 0}))
        assert float(dist(Packet({"f": 1}))) == pytest.approx(1.0, abs=1e-9)

    def test_unroll_limit_enforced(self):
        baseline = ExactInferenceBaseline(unroll_limit=3)
        loop = s.while_do(s.test("f", 0), s.choice((s.assign("f", 1), 0.01), (s.skip(), 0.99)))
        with pytest.raises(UnrollLimitExceeded):
            baseline.output_distribution(loop, Packet({"f": 0}))

    def test_state_space_limit_enforced(self):
        baseline = ExactInferenceBaseline(max_states=10)
        policy = s.seq(*[s.assign(f"x{i}", 3) for i in range(6)])
        with pytest.raises(MemoryError):
            baseline.output_distribution(policy, Packet({}))

    def test_agrees_with_interpreter_on_chain(self):
        chain = chain_model(1, Fraction(1, 10))
        baseline_prob = ExactInferenceBaseline().delivery_probability(
            chain.policy, chain.ingress, chain.delivered
        )
        native = Interpreter(exact=True).run_packet(chain.policy, chain.ingress)
        native_prob = float(
            native.prob_of(lambda o: o is not DROP and o.get("sw") == 4)
        )
        assert baseline_prob == pytest.approx(native_prob, abs=1e-9)

    def test_guarded_fragment_only(self):
        baseline = ExactInferenceBaseline()
        with pytest.raises(Exception):
            baseline.output_distribution(s.star(s.assign("f", 1)), Packet({"f": 0}))
