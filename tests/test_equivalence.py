"""Tests for program equivalence and refinement checking."""

from fractions import Fraction

from repro.core import syntax as s
from repro.core.equivalence import (
    compare,
    fdd_equivalent,
    output_equivalent,
    refines,
    strictly_refines,
)
from repro.core.packet import Packet


class TestFddEquivalence:
    def test_kat_identities(self):
        t = s.test("f", 1)
        assert fdd_equivalent(s.seq(t, t), t)
        assert fdd_equivalent(s.seq(s.skip(), t), t)
        assert fdd_equivalent(s.seq(t, s.drop()), s.drop())
        assert fdd_equivalent(s.union(t, t), t)

    def test_redundant_assignment_after_test(self):
        assert fdd_equivalent(s.seq(s.test("f", 1), s.assign("f", 1)), s.test("f", 1))

    def test_assign_then_test_same_value(self):
        assert fdd_equivalent(s.seq(s.assign("f", 1), s.test("f", 1)), s.assign("f", 1))

    def test_assign_then_test_other_value_is_drop(self):
        assert fdd_equivalent(s.seq(s.assign("f", 1), s.test("f", 2)), s.drop())

    def test_commuting_assignments(self):
        assert fdd_equivalent(
            s.seq(s.assign("f", 1), s.assign("g", 2)),
            s.seq(s.assign("g", 2), s.assign("f", 1)),
        )

    def test_choice_idempotence_and_commutativity(self):
        p = s.assign("f", 1)
        q = s.assign("f", 2)
        assert fdd_equivalent(s.choice((p, 0.5), (p, 0.5)), p)
        assert fdd_equivalent(
            s.choice((p, Fraction(1, 3)), (q, Fraction(2, 3))),
            s.choice((q, Fraction(2, 3)), (p, Fraction(1, 3))),
        )

    def test_conditional_versus_guarded_union(self):
        guard = s.test("f", 0)
        p, q = s.assign("g", 1), s.assign("g", 2)
        conditional = s.ite(guard, p, q)
        encoded = s.Union((s.seq(guard, p), s.seq(s.neg(guard), q)))
        # The encoded form is outside the guarded fragment, so compare the
        # conditional against a manual cascade instead.
        manual = s.ite(s.neg(guard), q, p)
        assert fdd_equivalent(conditional, manual)
        assert encoded.size() > 0  # silences the unused-variable warning

    def test_trivial_loop_equals_conditional(self):
        loop = s.while_do(s.test("f", 0), s.assign("f", 1))
        cond = s.ite(s.test("f", 0), s.assign("f", 1), s.skip())
        assert fdd_equivalent(loop, cond)

    def test_loop_unrolling_once(self):
        guard, body = s.test("f", 0), s.choice((s.assign("f", 1), 0.5), (s.assign("f", 2), 0.5))
        loop = s.while_do(guard, body)
        unrolled = s.ite(guard, s.seq(body, loop), s.skip())
        assert fdd_equivalent(loop, unrolled)

    def test_inequivalent_programs_detected(self):
        assert not fdd_equivalent(s.assign("f", 1), s.assign("f", 2))
        assert not fdd_equivalent(
            s.choice((s.assign("f", 1), 0.5), (s.assign("f", 2), 0.5)),
            s.choice((s.assign("f", 1), 0.6), (s.assign("f", 2), 0.4)),
        )


class TestOutputEquivalence:
    def test_restricted_equivalence_can_differ_from_full(self):
        p = s.ite(s.test("f", 0), s.assign("g", 1), s.assign("g", 2))
        q = s.assign("g", 1)
        inputs = [Packet({"f": 0, "g": 0})]
        assert output_equivalent(p, q, inputs, exact=True)
        assert not fdd_equivalent(p, q)

    def test_exact_flag(self):
        p = s.choice((s.assign("f", 1), Fraction(1, 3)), (s.assign("f", 2), Fraction(2, 3)))
        assert output_equivalent(p, p, [Packet({"f": 0})], exact=True)


class TestRefinement:
    def test_drop_refines_everything(self):
        p = s.assign("f", 1)
        inputs = [Packet({"f": 0})]
        assert refines(s.drop(), p, inputs)
        assert not refines(p, s.drop(), inputs)

    def test_partial_delivery_refines_full_delivery(self):
        partial = s.choice((s.assign("f", 1), 0.5), (s.drop(), 0.5))
        full = s.assign("f", 1)
        inputs = [Packet({"f": 0})]
        assert strictly_refines(partial, full, inputs)
        assert not strictly_refines(full, partial, inputs)

    def test_compare_classification(self):
        inputs = [Packet({"f": 0})]
        full = s.assign("f", 1)
        partial = s.choice((s.assign("f", 1), 0.5), (s.drop(), 0.5))
        other = s.assign("f", 2)
        assert compare(full, full, inputs) == "≡"
        assert compare(partial, full, inputs) == "<"
        assert compare(full, partial, inputs) == ">"
        assert compare(full, other, inputs) == "incomparable"

    def test_refinement_is_reflexive_and_transitive(self):
        inputs = [Packet({"f": 0})]
        low = s.choice((s.assign("f", 1), 0.25), (s.drop(), 0.75))
        mid = s.choice((s.assign("f", 1), 0.5), (s.drop(), 0.5))
        high = s.assign("f", 1)
        assert refines(low, low, inputs)
        assert refines(low, mid, inputs) and refines(mid, high, inputs)
        assert refines(low, high, inputs)
