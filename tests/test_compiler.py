"""Tests for the native compiler (ProbNetKAT -> canonical FDDs)."""

from fractions import Fraction

import pytest

from repro.core import syntax as s
from repro.core.compiler import Compiler, GuardedFragmentError, compile_policy
from repro.core.distributions import Dist
from repro.core.fdd.node import output_distribution
from repro.core.packet import DROP, Packet


@pytest.fixture
def compiler():
    return Compiler(exact=True)


def out(fdd, packet):
    return output_distribution(fdd, packet)


class TestAtomicPrograms:
    def test_skip_and_drop(self, compiler):
        assert compiler.compile(s.skip()) is compiler.manager.true_leaf
        assert compiler.compile(s.drop()) is compiler.manager.false_leaf

    def test_test_and_assign(self, compiler):
        test_fdd = compiler.compile(s.test("sw", 1))
        assign_fdd = compiler.compile(s.assign("sw", 1))
        assert out(test_fdd, Packet({"sw": 2})) == Dist.point(DROP)
        assert out(assign_fdd, Packet({"sw": 2})) == Dist.point(Packet({"sw": 1}))

    def test_negation_and_conjunction(self, compiler):
        pred = s.conj(s.test("sw", 1), s.neg(s.test("pt", 2)))
        fdd = compiler.compile(pred)
        assert out(fdd, Packet({"sw": 1, "pt": 3})) == Dist.point(Packet({"sw": 1, "pt": 3}))
        assert out(fdd, Packet({"sw": 1, "pt": 2})) == Dist.point(DROP)

    def test_predicate_union_allowed(self, compiler):
        fdd = compiler.compile(s.union(s.test("sw", 1), s.test("sw", 2)))
        assert out(fdd, Packet({"sw": 2})) == Dist.point(Packet({"sw": 2}))


class TestComposite:
    def test_sequence(self, compiler):
        fdd = compiler.compile(s.seq(s.test("sw", 1), s.assign("pt", 2)))
        assert out(fdd, Packet({"sw": 1, "pt": 1}))(Packet({"sw": 1, "pt": 2})) == 1

    def test_choice(self, compiler):
        fdd = compiler.compile(
            s.choice((s.assign("f", 1), Fraction(1, 3)), (s.assign("f", 2), Fraction(2, 3)))
        )
        dist = out(fdd, Packet({"f": 0}))
        assert dist(Packet({"f": 1})) == Fraction(1, 3)

    def test_nested_conditionals(self, compiler):
        policy = s.ite(
            s.test("sw", 1),
            s.assign("pt", 2),
            s.ite(s.test("sw", 2), s.assign("pt", 3), s.drop()),
        )
        fdd = compiler.compile(policy)
        assert out(fdd, Packet({"sw": 2, "pt": 0}))(Packet({"sw": 2, "pt": 3})) == 1
        assert out(fdd, Packet({"sw": 9, "pt": 0})) == Dist.point(DROP)

    def test_case_equals_cascade(self, compiler):
        branches = [(s.test("sw", i), s.assign("pt", i)) for i in (1, 2, 3)]
        case_fdd = compiler.compile(s.case(branches, s.drop()))
        ite_fdd = compiler.compile(s.case_to_ite(s.case(branches, s.drop())))
        assert case_fdd is ite_fdd

    def test_memoisation_returns_same_node(self, compiler):
        policy = s.seq(s.test("sw", 1), s.assign("pt", 2))
        assert compiler.compile(policy) is compiler.compile(policy)


class TestLoops:
    def test_deterministic_loop(self, compiler):
        loop = s.while_do(s.test("f", 0), s.assign("f", 1))
        fdd = compiler.compile(loop)
        assert out(fdd, Packet({"f": 0})) == Dist.point(Packet({"f": 1}))
        assert out(fdd, Packet({"f": 5})) == Dist.point(Packet({"f": 5}))

    def test_coin_flip_loop_terminates_almost_surely(self, compiler):
        loop = s.while_do(
            s.test("f", 0), s.choice((s.assign("f", 1), 0.5), (s.skip(), 0.5))
        )
        dist = out(compiler.compile(loop), Packet({"f": 0}))
        assert dist(Packet({"f": 1})) == 1

    def test_non_terminating_loop_drops(self, compiler):
        loop = s.while_do(s.test("f", 0), s.assign("f", 0))
        dist = out(compiler.compile(loop), Packet({"f": 0}))
        assert float(dist(DROP)) == pytest.approx(1.0)

    def test_counter_loop(self, compiler):
        # Count down from 3 to 0 one step at a time.
        body = s.case([(s.test("n", i), s.assign("n", i - 1)) for i in (3, 2, 1)], s.drop())
        loop = s.while_do(s.neg(s.test("n", 0)), body)
        dist = out(compiler.compile(loop), Packet({"n": 3}))
        assert dist(Packet({"n": 0})) == 1

    def test_float_solver_agrees_with_exact(self):
        loop = s.while_do(
            s.test("f", 0),
            s.choice((s.assign("f", 1), 0.25), (s.assign("f", 2), 0.25), (s.skip(), 0.5)),
        )
        exact = output_distribution(compile_policy(loop, exact=True), Packet({"f": 0}))
        approx = output_distribution(compile_policy(loop, exact=False), Packet({"f": 0}))
        assert exact.close_to(approx, tolerance=1e-9)

    def test_class_limit_enforced(self):
        compiler = Compiler(class_limit=2)
        loop = s.while_do(
            s.neg(s.test("n", 0)),
            s.case([(s.test("n", i), s.assign("n", i - 1)) for i in range(1, 6)], s.drop()),
        )
        with pytest.raises(Exception):
            compiler.compile(loop)


class TestGuardedFragment:
    def test_union_of_policies_rejected(self, compiler):
        with pytest.raises(GuardedFragmentError):
            compiler.compile(s.Union((s.assign("f", 1), s.assign("f", 2))))

    def test_star_rejected(self, compiler):
        with pytest.raises(GuardedFragmentError):
            compiler.compile(s.star(s.assign("f", 1)))


class TestAgainstReferenceSemantics:
    """Executable spot-check of Theorem 3.1 for the compiler on single packets."""

    @pytest.mark.parametrize(
        "policy",
        [
            s.ite(s.test("f", 0), s.assign("g", 1), s.assign("g", 0)),
            s.seq(
                s.choice((s.assign("f", 0), 0.5), (s.assign("f", 1), 0.5)),
                s.ite(s.test("f", 0), s.assign("g", 1), s.skip()),
            ),
            s.while_do(s.test("g", 1), s.choice((s.assign("g", 0), 0.5), (s.assign("f", 1), 0.5))),
        ],
        ids=["ite", "choice-then-ite", "probabilistic-loop"],
    )
    def test_fdd_matches_denotational_semantics(self, policy):
        from repro.core.packet import PacketUniverse
        from repro.core.semantics.denotational import eval_policy

        fdd = compile_policy(policy, exact=True)
        universe = PacketUniverse({"f": [0, 1], "g": [0, 1]})
        for packet in universe:
            via_fdd = output_distribution(fdd, packet)
            reference = eval_policy(policy, frozenset([packet])).map(
                lambda b: next(iter(b)) if b else DROP
            )
            assert via_fdd.close_to(reference, tolerance=1e-9)
