"""Tests for probabilistic FDDs: hash-consing, algorithms, and normalisation."""

from fractions import Fraction

import pytest

from repro.core.distributions import Dist
from repro.core.fdd import ops
from repro.core.fdd.actions import DROP as DROP_ACTION
from repro.core.fdd.actions import IDENTITY, Action, apply_action
from repro.core.fdd.dot import to_dot
from repro.core.fdd.node import (
    FddManager,
    evaluate,
    iter_nodes,
    leaves,
    mentioned_values,
    node_size,
    output_distribution,
)
from repro.core.packet import DROP, Packet


@pytest.fixture
def manager():
    return FddManager(field_order=["sw", "pt", "up"])


class TestActions:
    def test_identity_action(self):
        assert IDENTITY.is_identity()
        assert IDENTITY.apply(Packet({"f": 1})) == Packet({"f": 1})

    def test_apply_modifies_fields(self):
        action = Action({"pt": 2})
        assert action.apply(Packet({"sw": 1, "pt": 1})) == Packet({"sw": 1, "pt": 2})

    def test_composition_later_wins(self):
        composed = Action({"pt": 2}).then(Action({"pt": 3, "sw": 9}))
        assert composed.as_dict() == {"pt": 3, "sw": 9}

    def test_composition_with_drop(self):
        assert Action({"pt": 2}).then(DROP_ACTION) is DROP

    def test_apply_action_drop(self):
        assert apply_action(DROP_ACTION, Packet({"f": 1})) is DROP


class TestHashConsing:
    def test_leaves_are_interned(self, manager):
        a = manager.leaf(Dist.point(IDENTITY))
        b = manager.leaf(Dist.point(IDENTITY))
        assert a is b

    def test_branches_are_interned(self, manager):
        a = manager.from_test("sw", 1)
        b = manager.from_test("sw", 1)
        assert a is b

    def test_branch_collapses_equal_children(self, manager):
        node = manager.branch("sw", 1, manager.true_leaf, manager.true_leaf)
        assert node is manager.true_leaf

    def test_field_order_respected(self, manager):
        assert manager.field_rank("sw") < manager.field_rank("pt")
        assert manager.field_rank("new_field") > manager.field_rank("up")

    def test_node_count_grows(self, manager):
        before = manager.node_count()
        manager.from_test("pt", 3)
        assert manager.node_count() > before


class TestEvaluation:
    def test_test_fdd(self, manager):
        node = manager.from_test("sw", 1)
        assert output_distribution(node, Packet({"sw": 1})) == Dist.point(Packet({"sw": 1}))
        assert output_distribution(node, Packet({"sw": 2})) == Dist.point(DROP)

    def test_assign_fdd(self, manager):
        node = manager.from_assign("pt", 2)
        assert output_distribution(node, Packet({"pt": 1})) == Dist.point(Packet({"pt": 2}))

    def test_evaluate_missing_field_takes_false_branch(self, manager):
        node = manager.from_test("sw", 1)
        assert evaluate(node, Packet({})) == Dist.point(DROP_ACTION)

    def test_iter_nodes_and_size(self, manager):
        node = ops.conjoin(manager.from_test("sw", 1), manager.from_test("pt", 2))
        assert node_size(node) == len(list(iter_nodes(node)))
        assert all(leaf.is_leaf() for leaf in leaves(node))

    def test_mentioned_values(self, manager):
        node = ops.sequence(manager.from_test("sw", 1), manager.from_assign("pt", 7))
        values = mentioned_values(node)
        assert values["sw"] == {1}
        assert values["pt"] == {7}


class TestOps:
    def test_negate(self, manager):
        node = ops.negate(manager.from_test("sw", 1))
        assert output_distribution(node, Packet({"sw": 1})) == Dist.point(DROP)
        assert output_distribution(node, Packet({"sw": 2})) == Dist.point(Packet({"sw": 2}))

    def test_double_negation_is_identity_node(self, manager):
        pred = manager.from_test("sw", 1)
        assert ops.negate(ops.negate(pred)) is pred

    def test_conjoin_disjoin(self, manager):
        conj = ops.conjoin(manager.from_test("sw", 1), manager.from_test("pt", 2))
        disj = ops.disjoin(manager.from_test("sw", 1), manager.from_test("pt", 2))
        both = Packet({"sw": 1, "pt": 2})
        only_sw = Packet({"sw": 1, "pt": 3})
        assert output_distribution(conj, both) == Dist.point(both)
        assert output_distribution(conj, only_sw) == Dist.point(DROP)
        assert output_distribution(disj, only_sw) == Dist.point(only_sw)

    def test_convex_combination(self, manager):
        node = ops.convex(
            manager,
            [(manager.from_assign("f", 1), Fraction(1, 4)), (manager.from_assign("f", 2), Fraction(3, 4))],
        )
        out = output_distribution(node, Packet({"f": 0}))
        assert out(Packet({"f": 1})) == Fraction(1, 4)
        assert out(Packet({"f": 2})) == Fraction(3, 4)

    def test_ite(self, manager):
        node = ops.ite(
            manager.from_test("sw", 1),
            manager.from_assign("pt", 2),
            manager.from_assign("pt", 9),
        )
        assert output_distribution(node, Packet({"sw": 1, "pt": 0}))(Packet({"sw": 1, "pt": 2})) == 1
        assert output_distribution(node, Packet({"sw": 5, "pt": 0}))(Packet({"sw": 5, "pt": 9})) == 1

    def test_ite_rejects_non_boolean_guard(self, manager):
        with pytest.raises(ValueError):
            ops.ite(manager.from_assign("f", 1), manager.true_leaf, manager.false_leaf)

    def test_sequence_threads_modifications(self, manager):
        first = ops.sequence(manager.from_test("sw", 1), manager.from_assign("sw", 2))
        second = manager.from_test("sw", 2)
        composed = ops.sequence(first, second)
        assert output_distribution(composed, Packet({"sw": 1}))(Packet({"sw": 2})) == 1

    def test_sequence_respects_path_knowledge_on_unmodified_fields(self, manager):
        # (sw=1 ; pt<-2) ; sw=1  — the test on sw after the assignment to pt
        # must still see the original value learned on the path.
        first = ops.sequence(manager.from_test("sw", 1), manager.from_assign("pt", 2))
        composed = ops.sequence(first, manager.from_test("sw", 1))
        assert output_distribution(composed, Packet({"sw": 1, "pt": 0}))(
            Packet({"sw": 1, "pt": 2})
        ) == 1

    def test_sequence_modified_field_overrides_path_test(self, manager):
        # (sw=1 ; sw<-3) ; sw=1 must drop: the packet reaching the second test
        # has sw=3 even though the path through the first FDD tested sw=1.
        first = ops.sequence(manager.from_test("sw", 1), manager.from_assign("sw", 3))
        composed = ops.sequence(first, manager.from_test("sw", 1))
        assert output_distribution(composed, Packet({"sw": 1})) == Dist.point(DROP)

    def test_is_predicate_fdd(self, manager):
        assert ops.is_predicate_fdd(manager.from_test("sw", 1))
        assert not ops.is_predicate_fdd(manager.from_assign("sw", 1))

    def test_map_leaves(self, manager):
        node = manager.from_assign("f", 1)
        swapped = ops.map_leaves(node, lambda dist: dist.map(lambda a: DROP_ACTION))
        assert output_distribution(swapped, Packet({"f": 0})) == Dist.point(DROP)

    def test_reduce_drops_implied_modifications(self, manager):
        redundant = ops.sequence(manager.from_test("sw", 1), manager.from_assign("sw", 1))
        assert ops.reduce(redundant) is manager.from_test("sw", 1)

    def test_restrict_eq_and_ne(self, manager):
        node = manager.from_test("sw", 1)
        assert ops.restrict_eq(node, "sw", 1) is manager.true_leaf
        assert ops.restrict_eq(node, "sw", 2) is manager.false_leaf
        assert ops.restrict_ne(node, "sw", 1) is manager.false_leaf


class TestDot:
    def test_dot_output_mentions_tests_and_actions(self, manager):
        node = ops.ite(
            manager.from_test("sw", 1),
            manager.from_assign("pt", 2),
            manager.false_leaf,
        )
        dot = to_dot(node)
        assert "sw=1" in dot
        assert "pt:=2" in dot
        assert dot.startswith("digraph")


class TestLeafInterningAcrossNumericTypes:
    """Equal masses intern to one leaf regardless of arithmetic type."""

    def test_fraction_and_float_halves_share_a_leaf(self, manager):
        from fractions import Fraction

        a, b = Action({"f": 1}), Action({"f": 2})
        exact = manager.leaf(Dist({a: Fraction(1, 2), b: Fraction(1, 2)}))
        inexact = manager.leaf(Dist({a: 0.5, b: 0.5}))
        assert exact is inexact

    def test_unreduced_fractions_normalise(self, manager):
        from fractions import Fraction

        a = Action({"f": 1})
        assert manager.leaf(
            Dist({a: Fraction(2, 4), DROP: Fraction(1, 2)})
        ) is manager.leaf(Dist({a: Fraction(1, 2), DROP: 0.5}))

    def test_genuinely_different_numbers_stay_distinct(self, manager):
        from fractions import Fraction

        a, b = Action({"f": 1}), Action({"f": 2})
        third = manager.leaf(Dist({a: Fraction(1, 3), b: Fraction(2, 3)}))
        float_third = manager.leaf(Dist({a: 1 / 3, b: 2 / 3}))
        # float(1/3) is not the rational 1/3: these are different numbers
        # and must not be conflated by the interning key.
        assert third is not float_third


class TestSpecRoundTrip:
    def test_node_spec_round_trip(self, manager):
        from fractions import Fraction

        from repro.core.fdd.node import node_from_spec, node_to_spec

        node = manager.branch(
            "sw", 1,
            manager.leaf(Dist({Action({"pt": 2}): Fraction(1, 2), DROP: Fraction(1, 2)})),
            manager.from_test("pt", 7),
        )
        fresh = FddManager()
        rebuilt = node_from_spec(fresh, node_to_spec(node))
        for pk in [Packet({"sw": 1, "pt": 0}), Packet({"sw": 0, "pt": 7}), Packet({"sw": 0, "pt": 0})]:
            assert output_distribution(rebuilt, pk) == output_distribution(node, pk)
