"""Tests for remote replica hosts (``repro.service.host`` +
``RemoteBackendPool``), happy path.

Everything here runs against in-process :class:`HostServer` instances on
localhost TCP — real sockets, real worker processes, but no induced
failures (partitions, host kills, and reconnect storms live in
``test_chaos.py`` under the ``chaos`` marker).  The core claim: remote
pools speak the *unchanged* lease/affinity/steal protocol, so answers
agree with the process pool and per-call analysis to 1e-9 under every
planner, and remote workers are spec-fed (0 AST compilations) exactly
like local ones.
"""

from __future__ import annotations

import pytest

from repro.analysis.queries import delivery_probability
from repro.backends import MatrixBackend
from repro.failure.models import independent_failure_program
from repro.network.model import build_model
from repro.routing import downward_failable_ports, ecmp_policy
from repro.service import AnalysisSession, HostServer, Query
from repro.service.procpool import RemoteBackendPool, parse_host_list
from repro.topology import edge_switches, fat_tree


def ecmp_model(topo, dest: int):
    failable = downward_failable_ports(topo)
    return build_model(
        topo,
        routing=ecmp_policy(topo, dest),
        dest=dest,
        failure=independent_failure_program(failable, 1 / 1000),
        failable=failable,
    )


@pytest.fixture(scope="module")
def topo():
    return fat_tree(4)


@pytest.fixture(scope="module")
def all_models(topo):
    return {dest: ecmp_model(topo, dest) for dest in edge_switches(topo)}


@pytest.fixture(scope="module")
def all_pairs(all_models):
    """The 112-pair all-pairs delivery batch of the acceptance criterion."""
    batch = [
        Query.delivery(packet, dest)
        for dest, model in all_models.items()
        for packet in model.ingress_packets
    ]
    assert len(batch) == 112
    return batch


@pytest.fixture(scope="module")
def per_call_values(all_models, all_pairs):
    with MatrixBackend() as backend:
        return [
            delivery_probability(
                all_models[query.dest], inputs=[query.ingress], backend=backend
            )
            for query in all_pairs
        ]


@pytest.fixture(scope="module")
def process_values(all_models, all_pairs):
    """Reference answers from the local process pool (same batch)."""
    with AnalysisSession(
        models=all_models.values(), pool_size=4, pool_mode="process", workers=4
    ) as session:
        return session.query_batch(all_pairs).values


@pytest.fixture(scope="module")
def host_daemon():
    """One in-process worker host on an ephemeral localhost port."""
    with HostServer(workers=4).start() as server:
        yield server


def host_addr(server: HostServer) -> str:
    return f"{server.address[0]}:{server.port}"


class TestParseHostList:
    def test_accepts_strings_and_pairs(self):
        parsed = parse_host_list(["127.0.0.1:7001", ("10.0.0.2", 7002)])
        assert parsed == [("127.0.0.1", 7001), ("10.0.0.2", 7002)]

    def test_rejects_portless_spec(self):
        with pytest.raises(ValueError):
            parse_host_list(["localhost"])

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            parse_host_list([])


class TestRemoteAgreement:
    def test_all_pairs_agreement_across_planners(
        self, host_daemon, all_models, all_pairs, per_call_values, process_values
    ):
        """The acceptance criterion's exactness half: localhost TCP remote
        answers match the process pool and per-call analysis within 1e-9
        under every planner, spec-fed only."""
        address = host_addr(host_daemon)
        for planner in ("destination", "ingress:8", "round-robin:4"):
            with AnalysisSession(
                models=all_models.values(),
                pool_size=4,
                pool_mode="remote",
                hosts=[address],
                workers=4,
                planner=planner,
            ) as session:
                served = session.query_batch(all_pairs)
                for value, process_value, per_call in zip(
                    served.values, process_values, per_call_values
                ):
                    assert value == pytest.approx(process_value, abs=1e-9)
                    assert value == pytest.approx(per_call, abs=1e-9)
                reports = session.pool.worker_reports()
                assert len(reports) == 4
                # Remote workers rebuilt every plan from shipped specs.
                assert all(report["ast_compilations"] == 0 for report in reports)
                assert all(report["host"] == address for report in reports)
                assert all(report["transport"] == "tcp" for report in reports)
                assert sum(report["queries"] for report in reports) >= len(all_pairs)

    def test_shards_report_remote_mode_and_real_pids(
        self, host_daemon, all_models, all_pairs
    ):
        import os

        with AnalysisSession(
            models=all_models.values(),
            pool_size=2,
            pool_mode="remote",
            hosts=[host_addr(host_daemon)],
            workers=2,
        ) as session:
            result = session.query_batch(all_pairs)
            pids = {pid for report in result.shards for pid in report.workers}
            assert len(pids) > 1
            assert os.getpid() not in pids
            assert all(report.pool_mode == "remote" for report in result.shards)


class TestRemoteIntrospection:
    def test_stats_expose_placement_and_failover_counters(
        self, host_daemon, all_models
    ):
        address = host_addr(host_daemon)
        model = next(iter(all_models.values()))
        with AnalysisSession(
            model,
            pool_size=2,
            pool_mode="remote",
            hosts=[address],
            workers=2,
        ) as session:
            session.query("delivery", model.ingress_packets[0], model.dest)
            stats = session.pool.stats()
            assert stats["mode"] == "remote"
            assert stats["hosts_configured"] == [address]
            assert stats["hosts"] == [address, address]
            assert stats["transports"] == ["tcp", "tcp"]
            assert stats["reconnects"] == [0, 0]
            assert stats["failovers"] == 0
            assert stats["remote_reconnects"] == 0
            assert stats["local_fallbacks"] == 0
            reports = session.pool.worker_reports()
            for report in reports:
                assert report["host"] == address
                assert report["transport"] == "tcp"
                assert report["reconnects"] == 0
                assert "heartbeat_misses" in report

    def test_local_pools_report_placement_defaults(self, all_models):
        """The new per-replica stats columns exist for every pool mode."""
        model = next(iter(all_models.values()))
        with AnalysisSession(model, pool_size=2, workers=2) as session:
            stats = session.pool.stats()
            assert stats["hosts"] == ["local", "local"]
            assert stats["transports"] == ["inproc", "inproc"]
            assert stats["reconnects"] == [0, 0]
        with AnalysisSession(
            model, pool_size=1, pool_mode="process", workers=1
        ) as session:
            stats = session.pool.stats()
            assert stats["hosts"] == ["local"]
            assert stats["transports"] == ["pipe"]
            (report,) = session.pool.worker_reports()
            assert report["host"] == "local"
            assert report["transport"] == "pipe"

    def test_default_pool_size_is_two_per_host(self, host_daemon, all_models):
        model = next(iter(all_models.values()))
        with AnalysisSession(
            model,
            pool_mode="remote",
            hosts=[host_addr(host_daemon)],
            workers=2,
        ) as session:
            assert session.pool_size == 2

    def test_replicas_spread_across_hosts_round_robin(self, all_models):
        model = next(iter(all_models.values()))
        with HostServer(workers=2).start() as second:
            with HostServer(workers=2).start() as first:
                hosts = [host_addr(first), host_addr(second)]
                with AnalysisSession(
                    model,
                    pool_mode="remote",
                    hosts=hosts,
                    workers=4,
                ) as session:
                    assert session.pool_size == 4  # 2 per host by default
                    placement = session.pool.stats()["hosts"]
                    assert placement == [hosts[0], hosts[1], hosts[0], hosts[1]]
                    value = session.query(
                        "delivery", model.ingress_packets[0], model.dest
                    )
                    expected = delivery_probability(
                        model, inputs=[model.ingress_packets[0]]
                    )
                    assert value == pytest.approx(expected, abs=1e-9)

    def test_metrics_export_remote_counters(self, host_daemon, all_models):
        from repro.service.telemetry import Telemetry

        model = next(iter(all_models.values()))
        with AnalysisSession(
            model,
            pool_size=1,
            pool_mode="remote",
            hosts=[host_addr(host_daemon)],
            workers=1,
            telemetry=Telemetry(),
        ) as session:
            session.query("delivery", model.ingress_packets[0], model.dest)
            text = session.metrics_text()
            assert "repro_remote_reconnects_total" in text
            assert "repro_host_failovers_total" in text


class TestRemoteConfiguration:
    def test_session_requires_hosts(self, all_models):
        model = next(iter(all_models.values()))
        with pytest.raises(ValueError, match="remote.*hosts"):
            AnalysisSession(model, pool_mode="remote")

    def test_unreachable_host_fails_fast_without_local_fallback(self):
        from repro.service.pool import PoolUnavailable

        with MatrixBackend() as backend:
            with pytest.raises(PoolUnavailable):
                RemoteBackendPool(
                    backend,
                    ["127.0.0.1:1"],  # reserved port: nothing listens
                    1,
                    connect_timeout=0.2,
                    local_fallback=False,
                )

    def test_at_capacity_host_refuses_attach(self, all_models):
        from repro.service.pool import PoolUnavailable

        with HostServer(workers=1, max_workers=1).start() as server:
            with MatrixBackend() as backend:
                with pytest.raises(PoolUnavailable):
                    RemoteBackendPool(
                        backend,
                        [host_addr(server)],
                        2,  # one more than the hard cap
                        local_fallback=False,
                    )

    def test_cli_prints_hosts_line(self, host_daemon, capsys):
        from repro.service.cli import main as service_main

        code = service_main(
            [
                "--topology",
                "fattree:4",
                "--scheme",
                "ecmp",
                "--dest",
                "1",
                "--all-pairs",
                "--pool-mode",
                "remote",
                "--remote-host",
                host_addr(host_daemon),
                "--workers",
                "2",
            ]
        )
        assert code == 0
        printed = capsys.readouterr().out
        assert "remote-hosted replicas" in printed
        assert "hosts: " in printed
        assert host_addr(host_daemon) + "/tcp" in printed
        assert "failover(s)" in printed

    def test_cli_rejects_remote_without_hosts(self):
        from repro.service.cli import main as service_main

        with pytest.raises(SystemExit, match="--remote-host"):
            service_main(["--all-pairs", "--pool-mode", "remote"])
