"""Tests for the absorbing Markov chain solvers."""

from fractions import Fraction

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.markov import (
    reachable_states,
    solve_absorption,
    solve_absorption_exact,
)


class TestFloatSolver:
    def test_simple_two_state_chain(self):
        # t -> a with probability 1.
        result = solve_absorption(["t"], ["a"], {"t": {"a": 1.0}})
        assert result["t"]["a"] == pytest.approx(1.0)
        assert result.lost_mass["t"] == 0.0

    def test_geometric_escape(self):
        # t loops with prob 1/2 and escapes with prob 1/2: absorbed w.p. 1.
        result = solve_absorption(["t"], ["a"], {"t": {"t": 0.5, "a": 0.5}})
        assert result["t"]["a"] == pytest.approx(1.0)

    def test_split_absorption(self):
        result = solve_absorption(
            ["t"], ["a", "b"], {"t": {"t": 0.5, "a": 0.25, "b": 0.25}}
        )
        assert result["t"]["a"] == pytest.approx(0.5)
        assert result["t"]["b"] == pytest.approx(0.5)

    def test_substochastic_rows_report_lost_mass(self):
        result = solve_absorption(["t"], ["a"], {"t": {"a": 0.25, "t": 0.25}})
        assert result["t"]["a"] == pytest.approx(1 / 3)
        assert result.lost_mass["t"] == pytest.approx(2 / 3)

    def test_chain_of_transient_states(self):
        transitions = {"t1": {"t2": 1.0}, "t2": {"t3": 1.0}, "t3": {"a": 1.0}}
        result = solve_absorption(["t1", "t2", "t3"], ["a"], transitions)
        assert result["t1"]["a"] == pytest.approx(1.0)

    def test_unknown_successor_rejected(self):
        with pytest.raises(KeyError):
            solve_absorption(["t"], ["a"], {"t": {"a": 0.5, "mystery": 0.5}})

    def test_empty_transient_set(self):
        assert solve_absorption([], ["a"], {}) == {}


class TestExactSolver:
    def test_exact_geometric(self):
        result = solve_absorption_exact(
            ["t"], ["a"], {"t": {"t": Fraction(1, 2), "a": Fraction(1, 2)}}
        )
        assert result["t"]["a"] == Fraction(1)

    def test_exact_split(self):
        result = solve_absorption_exact(
            ["t"],
            ["a", "b"],
            {"t": {"t": Fraction(1, 3), "a": Fraction(1, 3), "b": Fraction(1, 3)}},
        )
        assert result["t"]["a"] == Fraction(1, 2)
        assert result["t"]["b"] == Fraction(1, 2)

    def test_exact_lost_mass(self):
        result = solve_absorption_exact(
            ["t"], ["a"], {"t": {"a": Fraction(1, 4), "t": Fraction(1, 4)}}
        )
        assert result.lost_mass["t"] == Fraction(2, 3)

    def test_doomed_states_lose_all_mass(self):
        # A transient state that can never reach an absorbing state is not
        # an error: all of its mass is reported as lost.
        result = solve_absorption_exact(["t"], ["a"], {"t": {"t": Fraction(1)}})
        assert result["t"] == {}
        assert result.lost_mass["t"] == 1

    def test_doomed_states_lose_all_mass_float(self):
        result = solve_absorption(
            ["t", "u"], ["a"], {"t": {"u": 0.5, "a": 0.5}, "u": {"u": 1.0}}
        )
        assert result["t"]["a"] == pytest.approx(0.5)
        assert result.lost_mass["t"] == pytest.approx(0.5)
        assert result.lost_mass["u"] == pytest.approx(1.0)

    def test_agrees_with_float_solver(self):
        transitions = {
            "x": {"x": Fraction(1, 4), "y": Fraction(1, 4), "a": Fraction(1, 2)},
            "y": {"x": Fraction(1, 2), "b": Fraction(1, 2)},
        }
        exact = solve_absorption_exact(["x", "y"], ["a", "b"], transitions)
        approx = solve_absorption(["x", "y"], ["a", "b"], transitions)
        for state in ("x", "y"):
            for target in ("a", "b"):
                assert float(exact[state].get(target, 0)) == pytest.approx(
                    approx[state].get(target, 0.0), abs=1e-12
                )


class TestReachability:
    def test_reachable_states_discovery_order(self):
        graph = {1: [2, 3], 2: [4], 3: [], 4: []}
        assert reachable_states([1], lambda n: graph[n]) == [1, 2, 3, 4]

    def test_reachable_states_handles_cycles(self):
        graph = {1: [2], 2: [1]}
        assert set(reachable_states([1], lambda n: graph[n])) == {1, 2}


@given(
    loop=st.fractions(min_value=0, max_value=Fraction(9, 10)),
    split=st.fractions(min_value=0, max_value=1),
)
def test_absorption_probabilities_sum_to_one(loop, split):
    """A proper absorbing chain loses no mass and splits it among targets."""
    escape = 1 - loop
    transitions = {"t": {"t": loop, "a": escape * split, "b": escape * (1 - split)}}
    result = solve_absorption_exact(["t"], ["a", "b"], transitions)
    total = sum(result["t"].values(), Fraction(0))
    assert total == 1
    assert result.lost_mass["t"] == 0


class TestIncrementalAbsorptionSolver:
    def chain(self, n: int):
        """A 1-D random walk 0..n-1 absorbed at "win" (from n-1) or looping."""
        transitions = {}
        for i in range(n):
            up = "win" if i == n - 1 else i + 1
            transitions[i] = {up: Fraction(1, 2), i: Fraction(1, 2)}
        return transitions

    def test_single_solve_matches_batch_solver(self):
        from repro.core.markov import IncrementalAbsorptionSolver

        transitions = self.chain(4)
        solver = IncrementalAbsorptionSolver()
        result = solver.solve(list(range(4)), transitions)
        reference = solve_absorption(list(range(4)), ["win"], transitions)
        for state in range(4):
            assert result[state]["win"] == pytest.approx(reference[state]["win"], abs=1e-12)
        assert solver.factorizations == 1

    def test_growth_composes_through_gateways(self):
        from repro.core.markov import IncrementalAbsorptionSolver

        transitions = self.chain(6)
        solver = IncrementalAbsorptionSolver()
        solver.solve([3, 4, 5], transitions)          # upper half first
        assert solver.factorizations == 1
        result = solver.solve(list(range(6)), transitions)  # grow downwards
        assert solver.factorizations == 2
        reference = solve_absorption(list(range(6)), ["win"], transitions)
        for state in range(6):
            assert result[state]["win"] == pytest.approx(reference[state]["win"], abs=1e-12)
        # No growth: answered from the cache, no further factorization.
        solver.solve(list(range(6)), transitions)
        assert solver.factorizations == 2
        assert not solver.needs_solve(list(range(6)))

    def test_exact_growth(self):
        from repro.core.markov import IncrementalAbsorptionSolver

        transitions = self.chain(4)
        solver = IncrementalAbsorptionSolver(exact=True)
        solver.solve([2, 3], transitions)
        result = solver.solve([0, 1, 2, 3], transitions)
        assert solver.factorizations == 2
        for state in range(4):
            assert result[state]["win"] == 1

    def test_lost_mass_composes_through_gateways(self):
        from repro.core.markov import IncrementalAbsorptionSolver

        # 1 -> 2 (solved first, diverges); 0 -> 1 or "out".
        transitions = {
            2: {2: Fraction(1)},
            1: {2: Fraction(1)},
            0: {1: Fraction(1, 2), "out": Fraction(1, 2)},
        }
        solver = IncrementalAbsorptionSolver(exact=True)
        first = solver.solve([1, 2], transitions)
        assert first.lost_mass[1] == 1
        result = solver.solve([0, 1, 2], transitions)
        assert result[0]["out"] == Fraction(1, 2)
        assert result.lost_mass[0] == Fraction(1, 2)


class TestSchurGrowthUpdates:
    """Small growth steps run the Schur-complement low-rank path."""

    chain = TestIncrementalAbsorptionSolver.chain

    def test_small_growth_uses_schur_not_factorization(self):
        from repro.core.markov import IncrementalAbsorptionSolver

        transitions = self.chain(40)
        solver = IncrementalAbsorptionSolver()
        solver.solve(list(range(8, 40)), transitions)  # 32 states solved
        assert solver.factorizations == 1
        assert solver.schur_updates == 0
        # Growing by 8 on 32 solved states is exactly the 25% crossover:
        # the step must be answered by the Schur update, with zero full
        # factorizations.
        result = solver.solve(list(range(40)), transitions)
        assert solver.factorizations == 1
        assert solver.schur_updates == 1
        reference = solve_absorption(list(range(40)), ["win"], transitions)
        for state in range(40):
            assert result[state]["win"] == pytest.approx(
                reference[state]["win"], abs=1e-9
            )
        # Re-solving is a pure cache hit on both counters.
        solver.solve(list(range(40)), transitions)
        assert solver.factorizations == 1
        assert solver.schur_updates == 1

    def test_large_growth_falls_back_to_fresh_factorization(self):
        from repro.core.markov import IncrementalAbsorptionSolver

        transitions = self.chain(12)
        solver = IncrementalAbsorptionSolver()
        solver.solve(list(range(8, 12)), transitions)
        # 8 new on 4 solved exceeds the crossover: full factorization.
        solver.solve(list(range(12)), transitions)
        assert solver.factorizations == 2
        assert solver.schur_updates == 0

    def test_crossover_zero_disables_schur(self):
        from repro.core.markov import IncrementalAbsorptionSolver

        transitions = self.chain(30)
        solver = IncrementalAbsorptionSolver(schur_crossover=0.0)
        solver.solve(list(range(29, 30)), transitions)
        solver.solve(list(range(30)), transitions)
        assert solver.factorizations == 2
        assert solver.schur_updates == 0

    def test_schur_lost_mass_through_diverging_gateway(self):
        from repro.core.markov import IncrementalAbsorptionSolver

        # Gateway 1 diverges into 2; new state 0 splits between it and "out".
        transitions = {
            2: {2: 1.0},
            1: {2: 1.0},
            0: {1: 0.5, "out": 0.5},
        }
        solver = IncrementalAbsorptionSolver(schur_crossover=1.0)
        first = solver.solve([1, 2], transitions)
        assert first.lost_mass[1] == pytest.approx(1.0)
        result = solver.solve([0, 1, 2], transitions)
        assert solver.schur_updates == 1
        assert solver.factorizations == 1
        assert result[0]["out"] == pytest.approx(0.5)
        assert result.lost_mass[0] == pytest.approx(0.5)

    def test_schur_doomed_new_state(self):
        from repro.core.markov import IncrementalAbsorptionSolver

        transitions = self.chain(20)
        transitions["stuck"] = {"stuck": Fraction(1)}
        solver = IncrementalAbsorptionSolver()
        solver.solve(list(range(20)), transitions)
        result = solver.solve(list(range(20)) + ["stuck"], transitions)
        assert solver.schur_updates == 1
        assert solver.factorizations == 1
        assert result["stuck"] == {}
        assert result.lost_mass["stuck"] == pytest.approx(1.0)

    def test_schur_update_preserves_solved_rows(self):
        from repro.core.markov import IncrementalAbsorptionSolver

        transitions = self.chain(40)
        solver = IncrementalAbsorptionSolver()
        solver.solve(list(range(8, 40)), transitions)
        before = {state: solver.solution(state) for state in range(8, 40)}
        solver.solve(list(range(40)), transitions)
        assert solver.schur_updates == 1
        for state, row in before.items():
            assert solver.solution(state) is row


@given(data=st.data())
@settings(max_examples=80, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_incremental_growth_matches_from_scratch(data):
    """Randomized growth schedules ≡ a from-scratch batched solve (≤1e-9).

    Chains include sub-stochastic rows (lost mass) and states that cannot
    reach absorption (doomed), across crossover settings that force the
    Schur path, the legacy path, and the default mix.
    """
    from repro.core.markov import IncrementalAbsorptionSolver

    n = data.draw(st.integers(min_value=4, max_value=18), label="states")
    targets = ["a", "b"]
    transitions = {}
    for i in range(n):
        # Later states may reference earlier ones (the growth contract:
        # exploration closes forward reachability, so solved states never
        # point at states added later).
        choices = list(range(i + 1)) + targets
        successors = data.draw(
            st.lists(st.sampled_from(choices), min_size=1, max_size=3),
            label=f"succ[{i}]",
        )
        weights = data.draw(
            st.lists(
                st.integers(min_value=1, max_value=4),
                min_size=len(successors),
                max_size=len(successors),
            ),
            label=f"weights[{i}]",
        )
        denominator = max(
            sum(weights), data.draw(st.integers(min_value=1, max_value=12))
        )
        row: dict = {}
        for successor, weight in zip(successors, weights):
            row[successor] = row.get(successor, 0.0) + weight / denominator
        transitions[i] = row
    crossover = data.draw(st.sampled_from([0.0, 0.25, 1.0]), label="crossover")
    solver = IncrementalAbsorptionSolver(schur_crossover=crossover)
    cursor = 0
    while cursor < n:
        step = data.draw(st.integers(min_value=1, max_value=n - cursor))
        cursor += step
        solver.solve(list(range(cursor)), transitions)
    result = solver.solve(list(range(n)), transitions)
    reference = solve_absorption(list(range(n)), targets, transitions)
    for state in range(n):
        for target in targets:
            assert result[state].get(target, 0.0) == pytest.approx(
                reference[state].get(target, 0.0), abs=1e-9
            )
        assert result.lost_mass[state] == pytest.approx(
            reference.lost_mass[state], abs=1e-9
        )
