"""Figure 12(c) — expected hop count conditioned on delivery.

Sweeps the link-failure probability and reports the expected path length
of delivered traffic.  Expected shape: the rerouting schemes pay for
their resilience with longer paths as failures become more common, the
standard FatTree pays more than the AB FatTree, and ``F10_0``'s expected
hop count *decreases* (only short intra-pod paths survive).
"""

from __future__ import annotations

from fractions import Fraction

import pytest

from repro.analysis import expected_hop_count
from repro.routing import f10_model
from repro.topology import ab_fat_tree, fat_tree

from bench_utils import print_table, shared_interpreter

PROBABILITIES = [Fraction(1, 128), Fraction(1, 32), Fraction(1, 8), Fraction(1, 4)]
SERIES = [
    ("AB FatTree, F10_0", "ab", "f10_0"),
    ("AB FatTree, F10_3", "ab", "f10_3"),
    ("AB FatTree, F10_3,5", "ab", "f10_3_5"),
    ("FatTree, F10_3,5", "ft", "f10_3_5"),
]

RESULTS: dict[str, list[float]] = {}


def sweep(topology, scheme):
    values = []
    for pr in PROBABILITIES:
        model = f10_model(
            topology, 1, scheme=scheme, failure_probability=pr, count_hops=True, max_hops=14
        )
        # One interpreter across the figure's whole (scheme × pr) sweep.
        values.append(
            expected_hop_count(model, interpreter=shared_interpreter("fig12c"))
        )
    return values


@pytest.mark.parametrize("label,topo_kind,scheme", SERIES, ids=[s[0] for s in SERIES])
def test_expected_hop_count_sweep(benchmark, label, topo_kind, scheme):
    topology = ab_fat_tree(4) if topo_kind == "ab" else fat_tree(4)
    values = benchmark.pedantic(sweep, args=(topology, scheme), rounds=1, iterations=1)
    RESULTS[label] = values
    assert all(2.0 <= v <= 10.0 for v in values)


def test_matrix_backend_agrees(benchmark):
    """The matrix backend reproduces the conditioned expectation exactly."""
    from repro.backends import MatrixBackend

    model = f10_model(
        ab_fat_tree(4), 1, scheme="f10_3_5",
        failure_probability=PROBABILITIES[-1], count_hops=True, max_hops=14,
    )
    native = expected_hop_count(model)
    matrix = benchmark.pedantic(
        lambda: expected_hop_count(model, backend=MatrixBackend()),
        rounds=1, iterations=1,
    )
    assert matrix == pytest.approx(native, abs=1e-9)


def test_compiled_body_agrees_with_interpreted(benchmark):
    """Compiled-body and AST-interpreted loop paths agree within 1e-9."""
    from repro.core.interpreter import Interpreter

    model = f10_model(
        ab_fat_tree(4), 1, scheme="f10_3_5",
        failure_probability=PROBABILITIES[-1], count_hops=True, max_hops=14,
    )
    interpreted = expected_hop_count(
        model, interpreter=Interpreter(compile_bodies=False)
    )
    compiled = benchmark.pedantic(
        lambda: expected_hop_count(model, interpreter=Interpreter()),
        rounds=1, iterations=1,
    )
    assert compiled == pytest.approx(interpreted, abs=1e-9)


def test_report_figure12c(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    rows = [
        [label] + [f"{value:.3f}" for value in values] for label, values in RESULTS.items()
    ]
    print_table(
        "Figure 12(c) — expected hop count conditioned on delivery",
        ["scheme"] + [str(pr) for pr in PROBABILITIES],
        rows,
        fig="fig12c",
    )
    f10_0 = RESULTS["AB FatTree, F10_0"]
    assert f10_0[-1] < f10_0[0]  # shifts towards short intra-pod paths
    assert RESULTS["FatTree, F10_3,5"][-1] > RESULTS["AB FatTree, F10_3,5"][-1]
    assert RESULTS["AB FatTree, F10_3,5"][-1] > RESULTS["AB FatTree, F10_0"][-1]
