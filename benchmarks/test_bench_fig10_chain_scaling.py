"""Figures 9/10 — backend comparison on the chain-of-diamonds topology.

The paper compares McNetKAT's native backend, PRISM, and Bayonet on the
probability that a packet crosses a chain of diamonds whose lower links
fail with probability 1/1000.  This harness runs the native backend, the
PRISM pipeline (translation + mini DTMC engine), and the Bayonet-style
exact-inference baseline on growing chains.  The expected shape: all
engines agree on the probability, the baseline is the first to become
impractical, and the native backend scales furthest.
"""

from __future__ import annotations

import time
from fractions import Fraction

import pytest

from repro.backends.prism import PrismBackend
from repro.baselines import ExactInferenceBaseline
from repro.core.interpreter import Interpreter
from repro.core.packet import DROP
from repro.topology import chain_model

from bench_utils import print_table, scale, shared_interpreter

PFAIL = Fraction(1, 1000)
NATIVE_SIZES = [1, 2, 4, 8, 16, 32][: 4 + scale()]
PRISM_SIZES = [1, 2, 4, 8]
BASELINE_SIZES = [1, 2, 4]

RESULTS: list[list[object]] = []


def expected_probability(diamonds: int) -> float:
    return float((1 - PFAIL / 2) ** diamonds)


def _native(chain):
    out = shared_interpreter("fig10").run_packet(chain.policy, chain.ingress)
    return float(out.prob_of(lambda o: o is not DROP and o.get("sw") == 4 * chain.diamonds))


def _interpreted(chain):
    out = shared_interpreter("fig10", compile_bodies=False).run_packet(
        chain.policy, chain.ingress
    )
    return float(out.prob_of(lambda o: o is not DROP and o.get("sw") == 4 * chain.diamonds))


def _prism(chain):
    return float(PrismBackend().probability(chain.policy, chain.ingress, chain.delivered))


def _baseline(chain):
    return ExactInferenceBaseline(max_states=500_000).delivery_probability(
        chain.policy, chain.ingress, chain.delivered
    )


def _run(benchmark, engine, runner, diamonds):
    chain = chain_model(diamonds, PFAIL)
    start = time.perf_counter()
    probability = benchmark.pedantic(runner, args=(chain,), rounds=1, iterations=1)
    elapsed = time.perf_counter() - start
    RESULTS.append([engine, diamonds, 4 * diamonds, f"{probability:.6f}", f"{elapsed:.3f}s"])
    assert probability == pytest.approx(expected_probability(diamonds), abs=1e-9)


@pytest.mark.parametrize("diamonds", NATIVE_SIZES)
def test_native_backend(benchmark, diamonds):
    _run(benchmark, "native", _native, diamonds)


@pytest.mark.parametrize("diamonds", NATIVE_SIZES)
def test_interpreted_backend(benchmark, diamonds):
    """The AST-interpreted loop path: same answers, reported separately."""
    _run(benchmark, "native/interp", _interpreted, diamonds)


def test_compiled_matches_interpreted_distributions(benchmark):
    """Full output distributions of both native paths agree within 1e-9."""
    chain = chain_model(max(NATIVE_SIZES), PFAIL)

    def distributions():
        fast = Interpreter().run_packet(chain.policy, chain.ingress)
        slow = Interpreter(compile_bodies=False).run_packet(chain.policy, chain.ingress)
        return fast, slow

    fast, slow = benchmark.pedantic(distributions, rounds=1, iterations=1)
    for outcome in set(fast.support()) | set(slow.support()):
        assert float(fast(outcome)) == pytest.approx(float(slow(outcome)), abs=1e-9)


@pytest.mark.parametrize("diamonds", PRISM_SIZES)
def test_prism_backend(benchmark, diamonds):
    _run(benchmark, "prism", _prism, diamonds)


@pytest.mark.parametrize("diamonds", BASELINE_SIZES)
def test_exact_inference_baseline(benchmark, diamonds):
    _run(benchmark, "baseline", _baseline, diamonds)


def test_report_figure10(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    print_table(
        "Figure 10 — chain topology: delivery probability H1 -> H2 and engine time",
        ["engine", "diamonds", "switches", "P[deliver]", "time"],
        RESULTS,
        fig="fig10",
    )
    assert RESULTS
