"""Figure 11(c) — refinement relationships between the F10 schemes.

Regenerates the paper's refinement table: under k failures the simpler
scheme is strictly below the more resilient one exactly when the extra
rerouting logic starts to matter (k ≥ 1 for F10_0 vs F10_3, k ≥ 3 for
F10_3 vs F10_3,5, k ≥ 4 for F10_3,5 vs teleport).
"""

from __future__ import annotations

from repro.analysis.resilience import refinement_table
from repro.routing import f10_model
from repro.topology import ab_fat_tree

from bench_utils import print_table

PAIRS = [("f10_0", "f10_3"), ("f10_3", "f10_3_5"), ("f10_3_5", "teleport")]
BOUNDS = [0, 1, 2, 3, 4]

EXPECTED = {
    ("f10_0", "f10_3"): {0: "≡", 1: "<", 2: "<", 3: "<", 4: "<"},
    ("f10_3", "f10_3_5"): {0: "≡", 1: "≡", 2: "≡", 3: "<", 4: "<"},
    ("f10_3_5", "teleport"): {0: "≡", 1: "≡", 2: "≡", 3: "≡", 4: "<"},
}


def compute_table():
    topo = ab_fat_tree(4)

    def factory(scheme, k):
        return f10_model(topo, 1, scheme=scheme, failure_probability=1 / 4, max_failures=k)

    return refinement_table(factory, PAIRS, BOUNDS)


def test_figure11c_refinement_table(benchmark):
    table = benchmark.pedantic(compute_table, rounds=1, iterations=1)
    rows = [
        [bound] + [table[pair][bound] for pair in PAIRS] for bound in BOUNDS
    ]
    print_table(
        "Figure 11(c) — refinement relationships under k failures",
        ["k"] + [f"{a} vs {b}" for a, b in PAIRS],
        rows,
        fig="fig11c",
    )
    assert table == EXPECTED
