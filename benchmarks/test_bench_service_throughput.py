"""Service throughput — sharded sessions vs naive per-call analysis.

The claim under test is the service-layer analogue of the paper's
"compile once, query many times" story: a persistent
:class:`~repro.service.AnalysisSession` answering a 100+
(ingress, destination)-pair delivery batch on a FatTree k=4 — one
backend instance, one worker pool, batched per-destination solves —
must sustain at least **3x** the throughput of naive per-call
``analysis.*`` invocations (each of which sets up a fresh engine, the
pre-service behaviour).

The measured ratio is recorded as the ``speedup`` metric of
``BENCH_service.json`` (with the absolute queries/sec of both paths
alongside) and gated by CI against a committed baseline in
``benchmarks/baselines/``.  A second pass over the same batch is also
recorded: it is served from the session's canonical-FDD-keyed result
cache and demonstrates steady-state serving throughput.
"""

from __future__ import annotations

import gc
import time
from contextlib import contextmanager

import pytest

from repro.analysis import delivery_probability
from repro.failure.models import independent_failure_program
from repro.network.model import build_model
from repro.routing import downward_failable_ports, ecmp_policy
from repro.service import AnalysisSession, Query
from repro.topology import edge_switches, fat_tree

from bench_utils import print_table, record, scale

#: Number of destinations swept (each contributes its full ingress set of
#: 14 locations on the k=4 FatTree, so 8 destinations = 112 pairs ≥ 100).
N_DESTS = min(8, 6 + 2 * scale())
#: Sample size for the (slow) naive per-call path; its q/s extrapolates.
NAIVE_SAMPLE = 12

RESULTS: list[list[object]] = []
MEASURED: dict[str, float] = {}


@contextmanager
def _quiesced_gc():
    """Collect, then pause the GC for a measured region (both paths get it).

    When the whole suite runs before this file, hundreds of tests leave
    live objects whose GC passes would dominate the measurement; pausing
    collection for *both* the naive and the session path keeps the
    reported ratio about the engines, not about unrelated garbage.
    """
    gc.collect()
    was_enabled = gc.isenabled()
    gc.disable()
    try:
        yield
    finally:
        if was_enabled:
            gc.enable()


@pytest.fixture(scope="module")
def workload():
    topo = fat_tree(4)
    failable = downward_failable_ports(topo)

    def build(dest: int):
        return build_model(
            topo,
            routing=ecmp_policy(topo, dest),
            dest=dest,
            failure=independent_failure_program(failable, 1 / 1000),
            failable=failable,
        )

    dests = edge_switches(topo)[:N_DESTS]
    models = {dest: build(dest) for dest in dests}
    batch = [
        Query.delivery(packet, dest)
        for dest, model in models.items()
        for packet in model.ingress_packets
    ]
    assert len(batch) >= 100, "the acceptance batch must exceed 100 pairs"
    return models, batch


def test_naive_per_call_baseline(benchmark, workload):
    """Per-call ``analysis.delivery_probability`` with per-call engine setup."""
    models, batch = workload
    # Stride across the batch so the sample spans destinations (each naive
    # call then pays per-call setup for a different model, like real
    # one-off invocations would).
    stride = max(1, len(batch) // NAIVE_SAMPLE)
    sample = batch[::stride][:NAIVE_SAMPLE]
    MEASURED["naive_sample"] = sample  # type: ignore[assignment]

    def naive():
        with _quiesced_gc():
            return [
                delivery_probability(models[query.dest], inputs=[query.ingress])
                for query in sample
            ]

    start = time.perf_counter()
    values = benchmark.pedantic(naive, rounds=1, iterations=1)
    elapsed = time.perf_counter() - start
    MEASURED["naive_qps"] = len(sample) / elapsed
    MEASURED["naive_values"] = values  # type: ignore[assignment]
    RESULTS.append(
        ["naive per-call", len(sample), f"{elapsed:.2f}s", f"{MEASURED['naive_qps']:.1f}", "-"]
    )
    assert all(0.0 <= value <= 1.0 for value in values)


def test_sharded_session_throughput(benchmark, workload):
    """One session, one backend, one pool: the full batch, then a cached pass."""
    models, batch = workload

    def serve():
        with _quiesced_gc():
            with AnalysisSession(models=models.values(), planner="destination") as session:
                first = session.query_batch(batch)
                second = session.query_batch(batch)
                return first, second

    start = time.perf_counter()
    first, second = benchmark.pedantic(serve, rounds=1, iterations=1)
    elapsed = time.perf_counter() - start

    MEASURED["session_qps"] = len(batch) / first.seconds
    MEASURED["cached_qps"] = second.queries_per_second
    MEASURED["session_values"] = first  # type: ignore[assignment]
    RESULTS.append(
        [
            "sharded session",
            len(batch),
            f"{first.seconds:.2f}s",
            f"{MEASURED['session_qps']:.1f}",
            f"{len(first.shards)} shards",
        ]
    )
    RESULTS.append(
        [
            "cached repeat",
            len(batch),
            f"{second.seconds:.4f}s",
            f"{MEASURED['cached_qps']:.0f}",
            f"{second.cache_hits} hits",
        ]
    )
    assert second.cache_hits == len(batch)
    assert elapsed >= first.seconds


def test_session_agrees_with_naive():
    """The served values must equal the per-call values within 1e-9."""
    naive_values = MEASURED.get("naive_values")
    sample = MEASURED.get("naive_sample")
    first = MEASURED.get("session_values")
    assert naive_values is not None and first is not None, "measurement tests did not run"
    for query, expected in zip(sample, naive_values):
        assert first.value(query) == pytest.approx(expected, abs=1e-9)


def test_service_speedup(benchmark):
    """The tentpole claim: batched-session serving is ≥3x naive throughput."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    naive_qps = MEASURED.get("naive_qps")
    session_qps = MEASURED.get("session_qps")
    assert naive_qps and session_qps, "measurement tests did not run"
    speedup = session_qps / naive_qps
    record(
        "service",
        "Service throughput — sharded session vs naive per-call analysis (FatTree k=4)",
        ["path", "queries", "time", "q/s", "notes"],
        RESULTS,
        metrics={
            "speedup": speedup,
            "session_qps": session_qps,
            "naive_qps": naive_qps,
            "cached_qps": MEASURED.get("cached_qps", 0.0),
        },
    )
    assert speedup >= 3.0, (
        f"sharded session ({session_qps:.1f} q/s) not ≥3x naive per-call "
        f"({naive_qps:.1f} q/s)"
    )


def test_report_service(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    print_table(
        "Service throughput — sharded session vs naive per-call analysis (FatTree k=4)",
        ["path", "queries", "time", "q/s", "notes"],
        RESULTS,
        fig="service",
    )
    assert RESULTS
