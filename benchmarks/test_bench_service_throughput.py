"""Service throughput — sharded sessions vs naive per-call analysis.

The claim under test is the service-layer analogue of the paper's
"compile once, query many times" story: a persistent
:class:`~repro.service.AnalysisSession` answering a 100+
(ingress, destination)-pair delivery batch on a FatTree k=4 — one
backend instance, one worker pool, batched per-destination solves —
must sustain at least **3x** the throughput of naive per-call
``analysis.*`` invocations (each of which sets up a fresh engine, the
pre-service behaviour).

The measured ratio is recorded as the ``speedup`` metric of
``BENCH_service.json`` (with the absolute queries/sec of both paths
alongside) and gated by CI against a committed baseline in
``benchmarks/baselines/``.  A second pass over the same batch is also
recorded: it is served from the session's canonical-FDD-keyed result
cache and demonstrates steady-state serving throughput.

A second claim rides along since the backend replica pool landed: a
warmed session with ``pool_size=4`` (four independent backend replicas,
leased per shard with destination affinity — no session-wide solver
lock) must sustain at least the solver-pass throughput of a pool of 1
on the same 112-pair batch, recorded as the ``pool_speedup`` metric and
gated the same way.

A third claim landed with process-hosted replicas: on a solver-dominated
f10/AB-FatTree-k=6 workload, a session with ``pool_mode="process"``
(spec-shipped worker processes, each hosting a full backend replica —
see :mod:`repro.service.procpool`) must sustain at least the solver-pass
throughput of a single worker, recorded as ``procpool_speedup`` and
gated the same way; because workers run plan rebuild + matrix assembly +
``splu`` outside the parent's GIL, on machines with ≥4 cores the ratio
must additionally beat the thread pool's on the identical workload
(asserted in-test), which is the paper's near-linear parallel-speedup
curve made reproducible.  Each timed pass re-solves every destination from
its compiled plan (``clear_cache(keep_plans=True)`` drops the replicas'
factorizations between passes), so the measurement isolates the solver
path the pool parallelises.  The committed gate is a *no-regression*
floor: on a single-core or GIL-bound runner the Python-side matrix
construction serialises and near-1x is the honest expectation, while
the GIL-releasing ``splu`` factorizations overlap across replicas and
push the ratio up on solver-dominated workloads, real multi-core
machines, and free-threaded builds.  The structural evidence of
parallelism — distinct replicas serving shards whose wall-clock windows
overlap — is asserted unconditionally.

A fifth claim landed with the telemetry layer: observability must not
cost what it observes.  The same warmed steady-state solver passes are
served once with the default tracing-disabled telemetry and once with
full span tracing on; the throughput loss is recorded as the
lower-is-better ``telemetry_overhead_pct`` metric and gated by CI, so
instrumentation creep on the serving path fails the build instead of
silently taxing every query.

A sixth claim landed with remote replica hosts: moving a worker to the
other side of a TCP connection must cost framing, not throughput.  The
same warmed steady-state solver passes are served once by a
``pool_mode="process"`` session (pipe-attached workers) and once by a
``pool_mode="remote"`` session whose replicas live in a worker-host
daemon on localhost TCP (length-prefixed CRC-checksummed frames, the
heartbeat/supervision machinery fully armed); the throughput loss is
recorded as the lower-is-better ``remote_overhead_pct`` metric and
gated by CI, so creep in the framing/heartbeat path fails the build
instead of silently taxing every remote deployment.

A fourth claim rides along since the supervision layer landed: crash
recovery must be cheap.  The same 112-pair batch is served twice by a
warmed two-worker process pool — once cleanly, once while one worker is
SIGKILLed mid-batch — and the wall-clock *excess* of the faulted pass
(quarantine + transparent retry + in-place respawn) is recorded as the
lower-is-better ``recovery_extra_ms`` metric and gated by CI against
the committed baseline, so the self-healing path cannot silently grow
a pathological recovery stall.
"""

from __future__ import annotations

import gc
import os
import signal
import threading
import time
from contextlib import contextmanager
from fractions import Fraction

import pytest

from repro.analysis import delivery_probability
from repro.backends import MatrixBackend
from repro.failure.models import independent_failure_program
from repro.network.model import build_model
from repro.routing import downward_failable_ports, ecmp_policy, f10_model
from repro.service import AnalysisSession, HostServer, Query, Telemetry
from repro.service.pool import HEALTHY
from repro.topology import ab_fat_tree, edge_switches, fat_tree

from bench_utils import print_table, record, scale

#: Number of destinations swept (each contributes its full ingress set of
#: 14 locations on the k=4 FatTree, so 8 destinations = 112 pairs ≥ 100).
N_DESTS = min(8, 6 + 2 * scale())
#: Sample size for the (slow) naive per-call path; its q/s extrapolates.
NAIVE_SAMPLE = 12
#: Replica count of the pooled configuration under test.
POOL_SIZE = 4
#: Timed solver passes per pool configuration (each re-factorizes).
POOL_PASSES = 3
#: Destinations of the solver-dominated f10/AB-FatTree process-pool workload.
PROC_DESTS = 4
#: Worker count of the crash-recovery measurement (one dies, one carries on).
RECOVERY_POOL = 2
#: Replica count of the remote-vs-pipe transport-overhead measurement.
REMOTE_POOL = 2

RESULTS: list[list[object]] = []
MEASURED: dict[str, float] = {}


@contextmanager
def _quiesced_gc():
    """Collect, then pause the GC for a measured region (both paths get it).

    When the whole suite runs before this file, hundreds of tests leave
    live objects whose GC passes would dominate the measurement; pausing
    collection for *both* the naive and the session path keeps the
    reported ratio about the engines, not about unrelated garbage.
    """
    gc.collect()
    was_enabled = gc.isenabled()
    gc.disable()
    try:
        yield
    finally:
        if was_enabled:
            gc.enable()


@pytest.fixture(scope="module")
def workload():
    topo = fat_tree(4)
    failable = downward_failable_ports(topo)

    def build(dest: int):
        return build_model(
            topo,
            routing=ecmp_policy(topo, dest),
            dest=dest,
            failure=independent_failure_program(failable, 1 / 1000),
            failable=failable,
        )

    dests = edge_switches(topo)[:N_DESTS]
    models = {dest: build(dest) for dest in dests}
    batch = [
        Query.delivery(packet, dest)
        for dest, model in models.items()
        for packet in model.ingress_packets
    ]
    assert len(batch) >= 100, "the acceptance batch must exceed 100 pairs"
    return models, batch


def test_naive_per_call_baseline(benchmark, workload):
    """Per-call ``analysis.delivery_probability`` with per-call engine setup."""
    models, batch = workload
    # Stride across the batch so the sample spans destinations (each naive
    # call then pays per-call setup for a different model, like real
    # one-off invocations would).
    stride = max(1, len(batch) // NAIVE_SAMPLE)
    sample = batch[::stride][:NAIVE_SAMPLE]
    MEASURED["naive_sample"] = sample  # type: ignore[assignment]

    def naive():
        with _quiesced_gc():
            return [
                delivery_probability(models[query.dest], inputs=[query.ingress])
                for query in sample
            ]

    start = time.perf_counter()
    values = benchmark.pedantic(naive, rounds=1, iterations=1)
    elapsed = time.perf_counter() - start
    MEASURED["naive_qps"] = len(sample) / elapsed
    MEASURED["naive_values"] = values  # type: ignore[assignment]
    RESULTS.append(
        ["naive per-call", len(sample), f"{elapsed:.2f}s", f"{MEASURED['naive_qps']:.1f}", "-"]
    )
    assert all(0.0 <= value <= 1.0 for value in values)


def test_sharded_session_throughput(benchmark, workload):
    """One session, one backend, one pool: the full batch, then a cached pass."""
    models, batch = workload

    def serve():
        with _quiesced_gc():
            with AnalysisSession(models=models.values(), planner="destination") as session:
                first = session.query_batch(batch)
                second = session.query_batch(batch)
                return first, second

    start = time.perf_counter()
    first, second = benchmark.pedantic(serve, rounds=1, iterations=1)
    elapsed = time.perf_counter() - start

    MEASURED["session_qps"] = len(batch) / first.seconds
    MEASURED["cached_qps"] = second.queries_per_second
    MEASURED["session_values"] = first  # type: ignore[assignment]
    RESULTS.append(
        [
            "sharded session",
            len(batch),
            f"{first.seconds:.2f}s",
            f"{MEASURED['session_qps']:.1f}",
            f"{len(first.shards)} shards",
        ]
    )
    RESULTS.append(
        [
            "cached repeat",
            len(batch),
            f"{second.seconds:.4f}s",
            f"{MEASURED['cached_qps']:.0f}",
            f"{second.cache_hits} hits",
        ]
    )
    assert second.cache_hits == len(batch)
    assert elapsed >= first.seconds


def test_session_agrees_with_naive():
    """The served values must equal the per-call values within 1e-9."""
    naive_values = MEASURED.get("naive_values")
    sample = MEASURED.get("naive_sample")
    first = MEASURED.get("session_values")
    assert naive_values is not None and first is not None, "measurement tests did not run"
    for query, expected in zip(sample, naive_values):
        assert first.value(query) == pytest.approx(expected, abs=1e-9)


def test_pool_parallel_throughput(benchmark, workload):
    """Pool of 4 replicas vs pool of 1: steady-state solver throughput.

    Both sessions are warmed once (plans compiled, first solve done —
    the compile-once cost a persistent service pays at startup), then
    each timed pass re-solves the full 112-pair batch from scratch:
    ``clear_cache(keep_plans=True)`` drops the result cache and every
    replica's factorizations while keeping compiled plans, so every pass
    exercises matrix construction + ``splu`` + batched solves — the work
    the replica pool parallelises — rather than cache lookups.
    """
    models, batch = workload

    def serve(pool_size):
        with AnalysisSession(
            models=models.values(),
            planner="destination",
            workers=POOL_SIZE,
            pool_size=pool_size,
        ) as session:
            session.query_batch(batch)  # untimed warm pass: compile + solve
            session.clear_cache(keep_plans=True)
            passes = []
            start = time.perf_counter()
            for _ in range(POOL_PASSES):
                passes.append(session.query_batch(batch))
                session.clear_cache(keep_plans=True)
            elapsed = time.perf_counter() - start
            return elapsed, passes

    def both():
        with _quiesced_gc():
            return serve(1), serve(POOL_SIZE)

    (single_time, single_passes), (pooled_time, pooled_passes) = benchmark.pedantic(
        both, rounds=1, iterations=1
    )
    MEASURED["pool1_qps"] = len(batch) * POOL_PASSES / single_time
    MEASURED["pool4_qps"] = len(batch) * POOL_PASSES / pooled_time
    RESULTS.append(
        [
            "pool=1 solver passes",
            len(batch) * POOL_PASSES,
            f"{single_time:.2f}s",
            f"{MEASURED['pool1_qps']:.1f}",
            f"{POOL_PASSES} passes",
        ]
    )
    pooled_last = pooled_passes[-1]
    replicas_used = {r.replica for r in pooled_last.shards if r.replica >= 0}
    RESULTS.append(
        [
            f"pool={POOL_SIZE} solver passes",
            len(batch) * POOL_PASSES,
            f"{pooled_time:.2f}s",
            f"{MEASURED['pool4_qps']:.1f}",
            f"{len(replicas_used)} replicas",
        ]
    )
    # Every pooled pass agrees with the pool-of-1 pass per query.
    reference = single_passes[0]
    for result in pooled_passes:
        for query, expected in zip(batch, reference.values):
            assert result.value(query) == pytest.approx(expected, abs=1e-9)
    # Structural parallelism evidence: shards were served by multiple
    # replicas and their wall-clock windows overlap — no shard sat out
    # another replica's solve (with one session-wide solver lock the
    # backend work would strictly serialise).
    solved = [report for report in pooled_last.shards if report.replica >= 0]
    assert len({report.replica for report in solved}) > 1
    assert any(a.overlaps(b) for a in solved for b in solved if a.index < b.index)


def test_telemetry_overhead(benchmark, workload):
    """Span tracing must not cost what it observes (and off must be free).

    Two warmed sessions serve the same steady-state solver passes as the
    pool benchmark — one with the default telemetry (tracing disabled:
    the NOOP-span fast path plus per-batch metric increments), one with
    full tracing on (every request records its whole span tree,
    including backend phase spans).  The throughput loss of the traced
    configuration is recorded as the lower-is-better
    ``telemetry_overhead_pct`` metric and gated by CI against the
    committed baseline, so instrumentation creep can never silently tax
    the serving path.  The *disabled* path's cost is bounded by the
    existing ``speedup``/``pool_speedup`` gates: telemetry is always
    constructed now, so a disabled-path regression would drag those
    gated ratios down.
    """
    models, batch = workload

    def passes(telemetry):
        with AnalysisSession(
            models=models.values(),
            planner="destination",
            workers=POOL_SIZE,
            telemetry=telemetry,
        ) as session:
            session.query_batch(batch)  # untimed warm pass: compile + solve
            session.clear_cache(keep_plans=True)
            start = time.perf_counter()
            for _ in range(POOL_PASSES):
                session.query_batch(batch)
                session.clear_cache(keep_plans=True)
            elapsed = time.perf_counter() - start
            return elapsed, len(session.telemetry.tracer)

    def both():
        with _quiesced_gc():
            return passes(None), passes(Telemetry(tracing=True))

    (off_time, off_spans), (on_time, on_spans) = benchmark.pedantic(
        both, rounds=1, iterations=1
    )
    # The disabled path must buffer nothing; the traced path must have
    # captured every pass (request + shard + lease + phase spans).
    assert off_spans == 0
    assert on_spans >= (POOL_PASSES + 1) * (1 + N_DESTS)
    off_qps = len(batch) * POOL_PASSES / off_time
    on_qps = len(batch) * POOL_PASSES / on_time
    overhead_pct = max(0.0, (off_qps - on_qps) / off_qps * 100.0)
    MEASURED["telemetry_overhead_pct"] = overhead_pct
    MEASURED["untraced_qps"] = off_qps
    MEASURED["traced_qps"] = on_qps
    RESULTS.append(
        [
            "telemetry off (solver passes)",
            len(batch) * POOL_PASSES,
            f"{off_time:.2f}s",
            f"{off_qps:.1f}",
            "0 spans",
        ]
    )
    RESULTS.append(
        [
            "telemetry traced",
            len(batch) * POOL_PASSES,
            f"{on_time:.2f}s",
            f"{on_qps:.1f}",
            f"+{overhead_pct:.1f}% overhead, {on_spans} spans",
        ]
    )
    record(
        "service",
        "Service throughput — sharded session vs naive per-call analysis (FatTree k=4)",
        ["path", "queries", "time", "q/s", "notes"],
        RESULTS,
        metrics={
            "telemetry_overhead_pct": overhead_pct,
            "untraced_qps": off_qps,
            "traced_qps": on_qps,
        },
    )
    # Generous in-test ceiling (the CI gate against the committed
    # baseline is the real watchdog): full tracing of a solver-bound
    # batch must never cost half the throughput.
    assert overhead_pct < 50.0, (
        f"tracing cost {overhead_pct:.1f}% of throughput "
        f"({off_qps:.1f} → {on_qps:.1f} q/s)"
    )


def test_remote_transport_overhead(benchmark, workload):
    """Localhost-TCP replica hosting vs pipe hosting: frames must be cheap.

    Two warmed two-replica sessions serve the same steady-state solver
    passes as the pool benchmark — one ``pool_mode="process"`` (workers
    attached over pipes, the in-machine baseline), one
    ``pool_mode="remote"`` leasing its replicas from an in-process
    :class:`HostServer` on an ephemeral localhost port (real sockets,
    real worker processes, heartbeats and supervision fully armed).  The
    remote path pays pickle framing + CRC + TCP on every request and
    reply; its throughput loss versus the pipe path is recorded as the
    lower-is-better ``remote_overhead_pct`` metric and gated by CI
    against the committed baseline, so the wire path cannot silently
    grow per-query cost.  Answers must still agree to 1e-9 and the
    remote workers must stay spec-fed (0 AST compilations), the same
    exactness bar the unit suite holds.
    """
    models, batch = workload

    def passes(pool_mode, hosts=None):
        with AnalysisSession(
            models=models.values(),
            planner="destination",
            workers=REMOTE_POOL,
            pool_size=REMOTE_POOL,
            pool_mode=pool_mode,
            hosts=hosts,
        ) as session:
            for dest in models:
                session.warm(dest, solve=False)
            session.query_batch(batch)  # untimed: plan ship + first solve
            session.clear_cache(keep_plans=True)
            results = []
            start = time.perf_counter()
            for _ in range(POOL_PASSES):
                results.append(session.query_batch(batch))
                session.clear_cache(keep_plans=True)
            elapsed = time.perf_counter() - start
            return elapsed, results, session.pool.worker_reports()

    def both():
        with _quiesced_gc():
            with HostServer(workers=REMOTE_POOL).start() as server:
                address = f"{server.address[0]}:{server.port}"
                pipe = passes("process")
                remote = passes("remote", hosts=[address])
            return pipe, remote

    pipe, remote = benchmark.pedantic(both, rounds=1, iterations=1)
    pipe_time, pipe_passes, _pipe_reports = pipe
    remote_time, remote_passes, remote_reports = remote
    pipe_qps = len(batch) * POOL_PASSES / pipe_time
    remote_qps = len(batch) * POOL_PASSES / remote_time
    overhead_pct = max(0.0, (pipe_qps - remote_qps) / pipe_qps * 100.0)
    MEASURED["remote_overhead_pct"] = overhead_pct
    RESULTS.append(
        [
            f"pipe process pool={REMOTE_POOL}",
            len(batch) * POOL_PASSES,
            f"{pipe_time:.2f}s",
            f"{pipe_qps:.1f}",
            "transport reference",
        ]
    )
    RESULTS.append(
        [
            f"remote host pool={REMOTE_POOL}",
            len(batch) * POOL_PASSES,
            f"{remote_time:.2f}s",
            f"{remote_qps:.1f}",
            f"+{overhead_pct:.1f}% overhead, localhost TCP",
        ]
    )
    record(
        "service",
        "Service throughput — sharded session vs naive per-call analysis (FatTree k=4)",
        ["path", "queries", "time", "q/s", "notes"],
        RESULTS,
        metrics={
            "remote_overhead_pct": overhead_pct,
            "remote_qps": remote_qps,
            "pipe_pool_qps": pipe_qps,
        },
    )
    # The wire evidence: every serving replica really sat behind TCP and
    # stayed spec-fed across the plan ship.
    assert remote_reports, "remote worker reports are empty"
    assert all(report["transport"] == "tcp" for report in remote_reports)
    assert all(report["ast_compilations"] == 0 for report in remote_reports)
    # Exactness across the wire: every remote pass matches the pipe pass.
    reference = pipe_passes[0]
    for result in remote_passes:
        for query, expected in zip(batch, reference.values):
            assert result.value(query) == pytest.approx(expected, abs=1e-9)
    # Generous in-test ceiling (the CI gate against the committed
    # baseline is the real watchdog): localhost framing of a
    # solver-bound batch must never cost over half the throughput.
    assert overhead_pct < 60.0, (
        f"remote hosting cost {overhead_pct:.1f}% of throughput "
        f"({pipe_qps:.1f} → {remote_qps:.1f} q/s)"
    )


@pytest.mark.chaos
def test_crash_recovery_overhead(benchmark, workload):
    """SIGKILL one of two workers mid-batch: how much does healing cost?

    A warmed ``pool_mode="process"`` session serves the 112-pair batch
    twice from compiled plans — a clean reference pass, then a pass
    during which the first busy worker is SIGKILLed.  Supervision
    quarantines the corpse, transparently retries its shard on the
    survivor, and respawns the worker in place, so the faulted pass
    still returns every answer; the wall-clock excess over the clean
    pass is the caller-visible price of one crash and is recorded as
    the lower-is-better ``recovery_extra_ms`` metric, gated by CI
    against the committed baseline.
    """
    models, batch = workload

    def measure():
        with _quiesced_gc():
            with AnalysisSession(
                models=models.values(),
                planner="destination",
                workers=RECOVERY_POOL,
                pool_size=RECOVERY_POOL,
                pool_mode="process",
                max_attempts=3,
            ) as session:
                for dest in models:
                    session.warm(dest, solve=False)
                session.query_batch(batch)  # untimed: plan ship + first solve
                session.clear_cache(keep_plans=True)

                start = time.perf_counter()
                clean = session.query_batch(batch)
                clean_seconds = time.perf_counter() - start
                session.clear_cache(keep_plans=True)

                killed: list[int] = []
                stop = threading.Event()

                def killer():
                    # Kill the first worker caught mid-lease (busy =
                    # serving a shard).  If the SIGKILL races a reply that
                    # already left the pipe no failure registers, so keep
                    # striking busy workers until the pool notices one.
                    deadline = time.monotonic() + 60.0
                    while time.monotonic() < deadline and not stop.is_set():
                        for replica in session.pool.replicas:
                            if replica.busy and replica.health == HEALTHY:
                                os.kill(replica.backend.pid, signal.SIGKILL)
                                killed.append(replica.index)
                                settle = time.monotonic() + 2.0
                                while time.monotonic() < settle:
                                    if session.pool.failures > 0:
                                        return
                                    time.sleep(0.005)
                        time.sleep(0.0005)

                thread = threading.Thread(target=killer)
                thread.start()
                start = time.perf_counter()
                faulted = session.query_batch(batch)
                faulted_seconds = time.perf_counter() - start
                stop.set()
                thread.join(timeout=10.0)
                # The respawn runs on a supervisor thread; give it time
                # to land before reading the stats snapshot.
                deadline = time.monotonic() + 30.0
                while time.monotonic() < deadline:
                    if session.pool.stats()["restarts"] >= 1:
                        break
                    time.sleep(0.01)
                stats = session.pool.stats()
                retried = session.retried_shards
                return clean, clean_seconds, faulted, faulted_seconds, killed, stats, retried

    clean, clean_seconds, faulted, faulted_seconds, killed, stats, retried = benchmark.pedantic(
        measure, rounds=1, iterations=1
    )
    assert killed, "the fault injector never caught a busy worker"
    assert stats["failures"] >= 1, "the SIGKILL was never detected as a replica failure"
    assert stats["restarts"] >= 1, "the killed worker was never respawned"
    assert retried >= 1, "no shard was transparently retried"
    # The faulted pass is still exact: every answer matches the clean pass.
    for query, expected in zip(batch, clean.values):
        assert faulted.value(query) == pytest.approx(expected, abs=1e-9)

    recovery_extra_ms = max(0.0, (faulted_seconds - clean_seconds) * 1000.0)
    MEASURED["recovery_extra_ms"] = recovery_extra_ms
    RESULTS.append(
        [
            f"recovery clean (proc pool={RECOVERY_POOL})",
            len(batch),
            f"{clean_seconds:.2f}s",
            f"{len(batch) / clean_seconds:.1f}",
            "reference pass",
        ]
    )
    RESULTS.append(
        [
            "recovery with SIGKILL",
            len(batch),
            f"{faulted_seconds:.2f}s",
            f"{len(batch) / faulted_seconds:.1f}",
            f"+{recovery_extra_ms:.0f}ms, {stats['restarts']} restart(s)",
        ]
    )
    record(
        "service",
        "Service throughput — sharded session vs naive per-call analysis (FatTree k=4)",
        ["path", "queries", "time", "q/s", "notes"],
        RESULTS,
        metrics={
            "recovery_extra_ms": recovery_extra_ms,
            "recovery_clean_qps": len(batch) / clean_seconds,
            "recovery_faulted_qps": len(batch) / faulted_seconds,
        },
    )


@pytest.fixture(scope="module")
def f10_workload():
    """F10 rerouting on an AB FatTree k=6: the solver-dominated workload.

    F10's failover policies make the per-destination absorption systems
    substantially heavier than plain ECMP, so once plans are compiled the
    per-pass cost is dominated by exactly the phases a replica pool is
    supposed to parallelise: reachable-matrix assembly and the ``splu``
    factorization + batched solves.  One *shared* planner backend is
    handed to every session so each policy's AST is compiled exactly once
    across all four measured configurations — thread and process sessions
    alike then rebuild plans from manager-independent specs, which keeps
    the timed passes about the solver path, not recompilation.
    """
    topo = ab_fat_tree(6)
    dests = edge_switches(topo)[:PROC_DESTS]
    models = {
        dest: f10_model(
            topo,
            dest,
            scheme="f10_3",
            failure_probability=Fraction(1, 1000),
            max_failures=3,
        )
        for dest in dests
    }
    batch = [
        Query.delivery(packet, dest)
        for dest, model in models.items()
        for packet in model.ingress_packets
    ]
    with MatrixBackend() as planner_backend:
        yield models, batch, planner_backend


def _timed_solver_passes(models, batch, backend, pool_mode, pool_size):
    """Warm a session, then time ``POOL_PASSES`` full re-solves of the batch.

    Warmup pre-plans every destination on every replica through the lease
    path (spec rebuilds only — the shared planner backend holds the
    compiled plans) and pre-solves once; each timed pass then re-runs
    matrix assembly + factorization + batched solves from compiled plans
    (``clear_cache(keep_plans=True)`` drops solver state between passes).
    """
    with AnalysisSession(
        models=models.values(),
        backend=backend,
        planner="destination",
        workers=POOL_SIZE,
        pool_size=pool_size,
        pool_mode=pool_mode,
    ) as session:
        for dest in models:
            session.warm(dest, solve=False)
        session.query_batch(batch)  # untimed: first solve + result cache fill
        session.clear_cache(keep_plans=True)
        passes = []
        start = time.perf_counter()
        for _ in range(POOL_PASSES):
            passes.append(session.query_batch(batch))
            session.clear_cache(keep_plans=True)
        elapsed = time.perf_counter() - start
        worker_reports = (
            session.pool.worker_reports() if pool_mode == "process" else []
        )
        return elapsed, passes, worker_reports


def test_procpool_solver_throughput(benchmark, f10_workload):
    """Process pool of 4 vs process pool of 1 on the f10/AB-FatTree batch.

    Process-hosted replicas run *every* per-pass phase — plan rebuild,
    matrix assembly, ``splu``, batched solves — outside the parent's GIL,
    so on multi-core machines this ratio, unlike the thread pool's, is
    not capped by the GIL-bound assembly phases.
    """
    models, batch, planner_backend = f10_workload

    def both():
        with _quiesced_gc():
            return (
                _timed_solver_passes(models, batch, planner_backend, "process", 1),
                _timed_solver_passes(
                    models, batch, planner_backend, "process", POOL_SIZE
                ),
            )

    (single, pooled) = benchmark.pedantic(both, rounds=1, iterations=1)
    single_time, single_passes, _ = single
    pooled_time, pooled_passes, worker_reports = pooled
    MEASURED["proc1_qps"] = len(batch) * POOL_PASSES / single_time
    MEASURED["proc4_qps"] = len(batch) * POOL_PASSES / pooled_time
    MEASURED["f10_reference"] = single_passes[0]  # type: ignore[assignment]
    RESULTS.append(
        [
            "f10 process pool=1",
            len(batch) * POOL_PASSES,
            f"{single_time:.2f}s",
            f"{MEASURED['proc1_qps']:.1f}",
            f"{POOL_PASSES} passes",
        ]
    )
    pids = {
        pid
        for result in pooled_passes
        for report in result.shards
        for pid in report.workers
    }
    RESULTS.append(
        [
            f"f10 process pool={POOL_SIZE}",
            len(batch) * POOL_PASSES,
            f"{pooled_time:.2f}s",
            f"{MEASURED['proc4_qps']:.1f}",
            f"{len(pids)} workers",
        ]
    )
    # Cross-process evidence: several worker pids served shards, none of
    # them the parent, and the workers never compiled an AST.
    assert len(pids) > 1
    assert os.getpid() not in pids
    assert all(report["ast_compilations"] == 0 for report in worker_reports)
    for result in pooled_passes:
        assert all(report.pool_mode == "process" for report in result.shards)
    # Every pooled pass agrees with the single-replica reference.
    reference = single_passes[0]
    for result in pooled_passes:
        for query, expected in zip(batch, reference.values):
            assert result.value(query) == pytest.approx(expected, abs=1e-9)


def test_f10_thread_pool_reference(benchmark, f10_workload):
    """The thread pool on the identical workload (the GIL-bound yardstick)."""
    models, batch, planner_backend = f10_workload

    def both():
        with _quiesced_gc():
            return (
                _timed_solver_passes(models, batch, planner_backend, "thread", 1),
                _timed_solver_passes(
                    models, batch, planner_backend, "thread", POOL_SIZE
                ),
            )

    (single, pooled) = benchmark.pedantic(both, rounds=1, iterations=1)
    single_time, single_passes, _ = single
    pooled_time, _pooled_passes, _ = pooled
    MEASURED["f10_thread1_qps"] = len(batch) * POOL_PASSES / single_time
    MEASURED["f10_thread4_qps"] = len(batch) * POOL_PASSES / pooled_time
    RESULTS.append(
        [
            "f10 thread pool=1",
            len(batch) * POOL_PASSES,
            f"{single_time:.2f}s",
            f"{MEASURED['f10_thread1_qps']:.1f}",
            f"{POOL_PASSES} passes",
        ]
    )
    RESULTS.append(
        [
            f"f10 thread pool={POOL_SIZE}",
            len(batch) * POOL_PASSES,
            f"{pooled_time:.2f}s",
            f"{MEASURED['f10_thread4_qps']:.1f}",
            f"{POOL_PASSES} passes",
        ]
    )
    # Thread results agree with the process-pool reference within 1e-9.
    reference = MEASURED.get("f10_reference")
    assert reference is not None, "process-pool measurement did not run"
    for query, expected in zip(batch, reference.values):
        assert single_passes[0].value(query) == pytest.approx(expected, abs=1e-9)


def test_procpool_speedup(benchmark):
    """Process pooling must never cost throughput; parallel gains recorded.

    ``procpool_speedup`` (process pool=4 over process pool=1, steady-state
    solver passes) is gated in CI against the committed baseline.  On a
    single-core or GIL-bound runner the honest expectation is ~1x — the
    four workers time-share one core and the gate is a no-regression
    floor on IPC/replica overhead.  On real multi-core hardware every
    phase overlaps, so the ratio climbs toward core count — and must in
    particular beat the thread pool's ratio on the same workload, whose
    assembly phases stay GIL-serialised; that comparison is asserted
    whenever the machine actually has the cores to show it.
    """
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    proc1_qps = MEASURED.get("proc1_qps")
    proc4_qps = MEASURED.get("proc4_qps")
    thread1_qps = MEASURED.get("f10_thread1_qps")
    thread4_qps = MEASURED.get("f10_thread4_qps")
    assert proc1_qps and proc4_qps, "process-pool measurement did not run"
    assert thread1_qps and thread4_qps, "thread-pool reference did not run"
    procpool_speedup = proc4_qps / proc1_qps
    thread_speedup = thread4_qps / thread1_qps
    record(
        "service",
        "Service throughput — sharded session vs naive per-call analysis (FatTree k=4)",
        ["path", "queries", "time", "q/s", "notes"],
        RESULTS,
        metrics={
            "procpool_speedup": procpool_speedup,
            "procpool1_qps": proc1_qps,
            "procpool4_qps": proc4_qps,
            "f10_thread_pool_speedup": thread_speedup,
        },
    )
    assert procpool_speedup >= 0.55, (
        f"process pool of {POOL_SIZE} ({proc4_qps:.1f} q/s) lost more than "
        f"45% against a process pool of 1 ({proc1_qps:.1f} q/s): "
        "IPC/replica overhead regression"
    )
    if (os.cpu_count() or 1) >= POOL_SIZE:
        # Single-round measurements carry scheduler noise; a 10% allowance
        # on the thread ratio keeps this from flaking on a busy runner
        # while still failing whenever process hosting genuinely stops
        # out-scaling the GIL-bound thread pool (on real multi-core
        # hardware the expected gap is far wider than 10%: the thread
        # pool only overlaps splu, the process pool overlaps everything).
        assert procpool_speedup > thread_speedup * 0.90, (
            f"with {os.cpu_count()} cores the process pool "
            f"({procpool_speedup:.2f}x) must beat the GIL-bound thread pool "
            f"({thread_speedup:.2f}x) on the solver-dominated f10 workload"
        )


def test_pool_speedup(benchmark):
    """Pooling must never cost throughput; parallel gains are recorded.

    ``pool_speedup`` is gated in CI against the committed baseline as a
    no-regression floor (see the module docstring for why the honest
    expectation on a GIL build of this compile-dominated batch is ~1x
    rather than the multi-core solver-bound ceiling).
    """
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    pool1_qps = MEASURED.get("pool1_qps")
    pool4_qps = MEASURED.get("pool4_qps")
    assert pool1_qps and pool4_qps, "pool measurement test did not run"
    pool_speedup = pool4_qps / pool1_qps
    record(
        "service",
        "Service throughput — sharded session vs naive per-call analysis (FatTree k=4)",
        ["path", "queries", "time", "q/s", "notes"],
        RESULTS,
        metrics={
            "pool_speedup": pool_speedup,
            "pool1_qps": pool1_qps,
            "pool4_qps": pool4_qps,
        },
    )
    assert pool_speedup >= 0.7, (
        f"pool of {POOL_SIZE} ({pool4_qps:.1f} q/s) lost more than 30% against "
        f"a pool of 1 ({pool1_qps:.1f} q/s): replica overhead regression"
    )


def test_service_speedup(benchmark):
    """The tentpole claim: batched-session serving is ≥3x naive throughput."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    naive_qps = MEASURED.get("naive_qps")
    session_qps = MEASURED.get("session_qps")
    assert naive_qps and session_qps, "measurement tests did not run"
    speedup = session_qps / naive_qps
    record(
        "service",
        "Service throughput — sharded session vs naive per-call analysis (FatTree k=4)",
        ["path", "queries", "time", "q/s", "notes"],
        RESULTS,
        metrics={
            "speedup": speedup,
            "session_qps": session_qps,
            "naive_qps": naive_qps,
            "cached_qps": MEASURED.get("cached_qps", 0.0),
        },
    )
    assert speedup >= 3.0, (
        f"sharded session ({session_qps:.1f} q/s) not ≥3x naive per-call "
        f"({naive_qps:.1f} q/s)"
    )


#: Synthetic growth workload of the Schur-update benchmark: a solved
#: ``GROWTH_BASE``-state absorbing chain grows by ``GROWTH_STEP`` states
#: per step, ``GROWTH_STEPS`` times.
GROWTH_BASE = 2000
GROWTH_STEP = 40
GROWTH_STEPS = 12
GROWTH_ROUNDS = 3


def _growth_transitions(n: int):
    """A prefix-closed layered absorbing chain with 8 shared sinks.

    Each state couples to a few earlier states (so growth steps only add
    border rows, the contract of the incremental solver) and sheds 30% of
    its mass into the absorbing sinks.
    """
    import random

    rng = random.Random(7)
    transitions = {0: {"out0": 1.0}}
    for i in range(1, n):
        preds = sorted(rng.sample(range(max(0, i - 40), i), k=min(3, i)))
        row = {p: 0.7 / len(preds) for p in preds}
        row[f"out{rng.randrange(8)}"] = 0.25
        sink = f"out{(i + 1) % 8}"
        row[sink] = row.get(sink, 0.0) + 0.05
        transitions[i] = row
    return transitions


def test_growth_update_speedup(benchmark):
    """Schur-complement growth updates vs forced full refactorization.

    A solved 2000-state absorbing chain grows by 40 states twelve times.
    The :class:`IncrementalAbsorptionSolver` answers each step with a
    Schur-complement border solve — factorizing only the 40x40 growth
    block against the cached gateway rows — while the comparator is what
    any non-incremental solver must do: re-factorize the full
    ``(I - Q)`` of every state seen so far on every step.  The wall-clock
    ratio is recorded as the ``growth_update_speedup`` metric of
    ``BENCH_service.json`` and gated by CI against the committed
    baseline; the Schur pass must additionally agree with the
    from-scratch solves to 1e-9 and perform zero full factorizations
    after its warmup solve (asserted via the solver's counters).
    """
    from repro.core.markov import IncrementalAbsorptionSolver, solve_absorption

    total = GROWTH_BASE + GROWTH_STEP * GROWTH_STEPS
    transitions = _growth_transitions(total)
    targets = sorted({t for row in transitions.values() for t in row if isinstance(t, str)})

    def measure():
        with _quiesced_gc():
            schur_times, scratch_times = [], []
            for _ in range(GROWTH_ROUNDS):
                solver = IncrementalAbsorptionSolver()
                solver.solve(list(range(GROWTH_BASE)), transitions)  # untimed warmup
                warm_factorizations = solver.factorizations
                start = time.perf_counter()
                for step in range(GROWTH_STEPS):
                    upto = GROWTH_BASE + (step + 1) * GROWTH_STEP
                    grown = solver.solve(list(range(upto)), transitions)
                schur_times.append(time.perf_counter() - start)

                start = time.perf_counter()
                for step in range(GROWTH_STEPS):
                    upto = GROWTH_BASE + (step + 1) * GROWTH_STEP
                    scratch = solve_absorption(list(range(upto)), targets, transitions)
                scratch_times.append(time.perf_counter() - start)
            return min(schur_times), min(scratch_times), solver, warm_factorizations, grown, scratch

    schur_s, scratch_s, solver, warm_factorizations, grown, scratch = benchmark.pedantic(
        measure, rounds=1, iterations=1
    )
    # The growth steps ran as pure Schur updates: no full factorization
    # after warmup, one border solve per step.
    assert solver.factorizations == warm_factorizations
    assert solver.schur_updates == GROWTH_STEPS
    # ... and they agree with the from-scratch solves.
    for state in range(total):
        expected = scratch[state]
        row = grown[state]
        for outcome in set(expected) | set(row):
            assert row.get(outcome, 0.0) == pytest.approx(
                expected.get(outcome, 0.0), abs=1e-9
            )
    speedup = scratch_s / schur_s if schur_s else float("inf")
    MEASURED["growth_update_speedup"] = speedup
    RESULTS.append(
        [
            "growth: full refactorize",
            GROWTH_STEPS,
            f"{scratch_s:.3f}s",
            f"{GROWTH_STEPS / scratch_s:.1f}",
            f"{total} states",
        ]
    )
    RESULTS.append(
        [
            "growth: schur updates",
            GROWTH_STEPS,
            f"{schur_s:.3f}s",
            f"{GROWTH_STEPS / schur_s:.1f}",
            f"{speedup:.1f}x, {GROWTH_STEP} states/step",
        ]
    )
    record(
        "service",
        "Service throughput — sharded session vs naive per-call analysis (FatTree k=4)",
        ["path", "queries", "time", "q/s", "notes"],
        RESULTS,
        metrics={
            "growth_update_speedup": speedup,
            "growth_schur_s": schur_s,
            "growth_refactorize_s": scratch_s,
        },
    )
    # Generous in-test floor (the CI gate against the committed baseline
    # is the real watchdog): a 40-row border solve must beat twelve
    # 2000+-state refactorizations by a wide margin.
    assert speedup >= 5.0, (
        f"Schur growth updates ({schur_s:.3f}s) not ≥5x faster than forced "
        f"refactorization ({scratch_s:.3f}s) over the growth schedule"
    )


def test_report_service(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    print_table(
        "Service throughput — sharded session vs naive per-call analysis (FatTree k=4)",
        ["path", "queries", "time", "q/s", "notes"],
        RESULTS,
        fig="service",
    )
    assert RESULTS
