"""Service throughput — sharded sessions vs naive per-call analysis.

The claim under test is the service-layer analogue of the paper's
"compile once, query many times" story: a persistent
:class:`~repro.service.AnalysisSession` answering a 100+
(ingress, destination)-pair delivery batch on a FatTree k=4 — one
backend instance, one worker pool, batched per-destination solves —
must sustain at least **3x** the throughput of naive per-call
``analysis.*`` invocations (each of which sets up a fresh engine, the
pre-service behaviour).

The measured ratio is recorded as the ``speedup`` metric of
``BENCH_service.json`` (with the absolute queries/sec of both paths
alongside) and gated by CI against a committed baseline in
``benchmarks/baselines/``.  A second pass over the same batch is also
recorded: it is served from the session's canonical-FDD-keyed result
cache and demonstrates steady-state serving throughput.

A second claim rides along since the backend replica pool landed: a
warmed session with ``pool_size=4`` (four independent backend replicas,
leased per shard with destination affinity — no session-wide solver
lock) must sustain at least the solver-pass throughput of a pool of 1
on the same 112-pair batch, recorded as the ``pool_speedup`` metric and
gated the same way.  Each timed pass re-solves every destination from
its compiled plan (``clear_cache(keep_plans=True)`` drops the replicas'
factorizations between passes), so the measurement isolates the solver
path the pool parallelises.  The committed gate is a *no-regression*
floor: on a single-core or GIL-bound runner the Python-side matrix
construction serialises and near-1x is the honest expectation, while
the GIL-releasing ``splu`` factorizations overlap across replicas and
push the ratio up on solver-dominated workloads, real multi-core
machines, and free-threaded builds.  The structural evidence of
parallelism — distinct replicas serving shards whose wall-clock windows
overlap — is asserted unconditionally.
"""

from __future__ import annotations

import gc
import time
from contextlib import contextmanager

import pytest

from repro.analysis import delivery_probability
from repro.failure.models import independent_failure_program
from repro.network.model import build_model
from repro.routing import downward_failable_ports, ecmp_policy
from repro.service import AnalysisSession, Query
from repro.topology import edge_switches, fat_tree

from bench_utils import print_table, record, scale

#: Number of destinations swept (each contributes its full ingress set of
#: 14 locations on the k=4 FatTree, so 8 destinations = 112 pairs ≥ 100).
N_DESTS = min(8, 6 + 2 * scale())
#: Sample size for the (slow) naive per-call path; its q/s extrapolates.
NAIVE_SAMPLE = 12
#: Replica count of the pooled configuration under test.
POOL_SIZE = 4
#: Timed solver passes per pool configuration (each re-factorizes).
POOL_PASSES = 3

RESULTS: list[list[object]] = []
MEASURED: dict[str, float] = {}


@contextmanager
def _quiesced_gc():
    """Collect, then pause the GC for a measured region (both paths get it).

    When the whole suite runs before this file, hundreds of tests leave
    live objects whose GC passes would dominate the measurement; pausing
    collection for *both* the naive and the session path keeps the
    reported ratio about the engines, not about unrelated garbage.
    """
    gc.collect()
    was_enabled = gc.isenabled()
    gc.disable()
    try:
        yield
    finally:
        if was_enabled:
            gc.enable()


@pytest.fixture(scope="module")
def workload():
    topo = fat_tree(4)
    failable = downward_failable_ports(topo)

    def build(dest: int):
        return build_model(
            topo,
            routing=ecmp_policy(topo, dest),
            dest=dest,
            failure=independent_failure_program(failable, 1 / 1000),
            failable=failable,
        )

    dests = edge_switches(topo)[:N_DESTS]
    models = {dest: build(dest) for dest in dests}
    batch = [
        Query.delivery(packet, dest)
        for dest, model in models.items()
        for packet in model.ingress_packets
    ]
    assert len(batch) >= 100, "the acceptance batch must exceed 100 pairs"
    return models, batch


def test_naive_per_call_baseline(benchmark, workload):
    """Per-call ``analysis.delivery_probability`` with per-call engine setup."""
    models, batch = workload
    # Stride across the batch so the sample spans destinations (each naive
    # call then pays per-call setup for a different model, like real
    # one-off invocations would).
    stride = max(1, len(batch) // NAIVE_SAMPLE)
    sample = batch[::stride][:NAIVE_SAMPLE]
    MEASURED["naive_sample"] = sample  # type: ignore[assignment]

    def naive():
        with _quiesced_gc():
            return [
                delivery_probability(models[query.dest], inputs=[query.ingress])
                for query in sample
            ]

    start = time.perf_counter()
    values = benchmark.pedantic(naive, rounds=1, iterations=1)
    elapsed = time.perf_counter() - start
    MEASURED["naive_qps"] = len(sample) / elapsed
    MEASURED["naive_values"] = values  # type: ignore[assignment]
    RESULTS.append(
        ["naive per-call", len(sample), f"{elapsed:.2f}s", f"{MEASURED['naive_qps']:.1f}", "-"]
    )
    assert all(0.0 <= value <= 1.0 for value in values)


def test_sharded_session_throughput(benchmark, workload):
    """One session, one backend, one pool: the full batch, then a cached pass."""
    models, batch = workload

    def serve():
        with _quiesced_gc():
            with AnalysisSession(models=models.values(), planner="destination") as session:
                first = session.query_batch(batch)
                second = session.query_batch(batch)
                return first, second

    start = time.perf_counter()
    first, second = benchmark.pedantic(serve, rounds=1, iterations=1)
    elapsed = time.perf_counter() - start

    MEASURED["session_qps"] = len(batch) / first.seconds
    MEASURED["cached_qps"] = second.queries_per_second
    MEASURED["session_values"] = first  # type: ignore[assignment]
    RESULTS.append(
        [
            "sharded session",
            len(batch),
            f"{first.seconds:.2f}s",
            f"{MEASURED['session_qps']:.1f}",
            f"{len(first.shards)} shards",
        ]
    )
    RESULTS.append(
        [
            "cached repeat",
            len(batch),
            f"{second.seconds:.4f}s",
            f"{MEASURED['cached_qps']:.0f}",
            f"{second.cache_hits} hits",
        ]
    )
    assert second.cache_hits == len(batch)
    assert elapsed >= first.seconds


def test_session_agrees_with_naive():
    """The served values must equal the per-call values within 1e-9."""
    naive_values = MEASURED.get("naive_values")
    sample = MEASURED.get("naive_sample")
    first = MEASURED.get("session_values")
    assert naive_values is not None and first is not None, "measurement tests did not run"
    for query, expected in zip(sample, naive_values):
        assert first.value(query) == pytest.approx(expected, abs=1e-9)


def test_pool_parallel_throughput(benchmark, workload):
    """Pool of 4 replicas vs pool of 1: steady-state solver throughput.

    Both sessions are warmed once (plans compiled, first solve done —
    the compile-once cost a persistent service pays at startup), then
    each timed pass re-solves the full 112-pair batch from scratch:
    ``clear_cache(keep_plans=True)`` drops the result cache and every
    replica's factorizations while keeping compiled plans, so every pass
    exercises matrix construction + ``splu`` + batched solves — the work
    the replica pool parallelises — rather than cache lookups.
    """
    models, batch = workload

    def serve(pool_size):
        with AnalysisSession(
            models=models.values(),
            planner="destination",
            workers=POOL_SIZE,
            pool_size=pool_size,
        ) as session:
            session.query_batch(batch)  # untimed warm pass: compile + solve
            session.clear_cache(keep_plans=True)
            passes = []
            start = time.perf_counter()
            for _ in range(POOL_PASSES):
                passes.append(session.query_batch(batch))
                session.clear_cache(keep_plans=True)
            elapsed = time.perf_counter() - start
            return elapsed, passes

    def both():
        with _quiesced_gc():
            return serve(1), serve(POOL_SIZE)

    (single_time, single_passes), (pooled_time, pooled_passes) = benchmark.pedantic(
        both, rounds=1, iterations=1
    )
    MEASURED["pool1_qps"] = len(batch) * POOL_PASSES / single_time
    MEASURED["pool4_qps"] = len(batch) * POOL_PASSES / pooled_time
    RESULTS.append(
        [
            "pool=1 solver passes",
            len(batch) * POOL_PASSES,
            f"{single_time:.2f}s",
            f"{MEASURED['pool1_qps']:.1f}",
            f"{POOL_PASSES} passes",
        ]
    )
    pooled_last = pooled_passes[-1]
    replicas_used = {r.replica for r in pooled_last.shards if r.replica >= 0}
    RESULTS.append(
        [
            f"pool={POOL_SIZE} solver passes",
            len(batch) * POOL_PASSES,
            f"{pooled_time:.2f}s",
            f"{MEASURED['pool4_qps']:.1f}",
            f"{len(replicas_used)} replicas",
        ]
    )
    # Every pooled pass agrees with the pool-of-1 pass per query.
    reference = single_passes[0]
    for result in pooled_passes:
        for query, expected in zip(batch, reference.values):
            assert result.value(query) == pytest.approx(expected, abs=1e-9)
    # Structural parallelism evidence: shards were served by multiple
    # replicas and their wall-clock windows overlap — no shard sat out
    # another replica's solve (with one session-wide solver lock the
    # backend work would strictly serialise).
    solved = [report for report in pooled_last.shards if report.replica >= 0]
    assert len({report.replica for report in solved}) > 1
    assert any(a.overlaps(b) for a in solved for b in solved if a.index < b.index)


def test_pool_speedup(benchmark):
    """Pooling must never cost throughput; parallel gains are recorded.

    ``pool_speedup`` is gated in CI against the committed baseline as a
    no-regression floor (see the module docstring for why the honest
    expectation on a GIL build of this compile-dominated batch is ~1x
    rather than the multi-core solver-bound ceiling).
    """
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    pool1_qps = MEASURED.get("pool1_qps")
    pool4_qps = MEASURED.get("pool4_qps")
    assert pool1_qps and pool4_qps, "pool measurement test did not run"
    pool_speedup = pool4_qps / pool1_qps
    record(
        "service",
        "Service throughput — sharded session vs naive per-call analysis (FatTree k=4)",
        ["path", "queries", "time", "q/s", "notes"],
        RESULTS,
        metrics={
            "pool_speedup": pool_speedup,
            "pool1_qps": pool1_qps,
            "pool4_qps": pool4_qps,
        },
    )
    assert pool_speedup >= 0.7, (
        f"pool of {POOL_SIZE} ({pool4_qps:.1f} q/s) lost more than 30% against "
        f"a pool of 1 ({pool1_qps:.1f} q/s): replica overhead regression"
    )


def test_service_speedup(benchmark):
    """The tentpole claim: batched-session serving is ≥3x naive throughput."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    naive_qps = MEASURED.get("naive_qps")
    session_qps = MEASURED.get("session_qps")
    assert naive_qps and session_qps, "measurement tests did not run"
    speedup = session_qps / naive_qps
    record(
        "service",
        "Service throughput — sharded session vs naive per-call analysis (FatTree k=4)",
        ["path", "queries", "time", "q/s", "notes"],
        RESULTS,
        metrics={
            "speedup": speedup,
            "session_qps": session_qps,
            "naive_qps": naive_qps,
            "cached_qps": MEASURED.get("cached_qps", 0.0),
        },
    )
    assert speedup >= 3.0, (
        f"sharded session ({session_qps:.1f} q/s) not ≥3x naive per-call "
        f"({naive_qps:.1f} q/s)"
    )


def test_report_service(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    print_table(
        "Service throughput — sharded session vs naive per-call analysis (FatTree k=4)",
        ["path", "queries", "time", "q/s", "notes"],
        RESULTS,
        fig="service",
    )
    assert RESULTS
