"""Shared configuration for the benchmark harness.

Every benchmark regenerates one table or figure of the paper's evaluation
(§6 and §7) and prints the reproduced rows/series so they can be compared
with the published plots.  Absolute times are not expected to match the
paper (this is a pure-Python reproduction of an OCaml tool running on a
cluster); the *shape* — which scheme/backend wins, and how quickly cost
grows — is the claim under test.

Set the ``REPRO_SCALE`` environment variable (default 1) to grow the
parameter sweeps, e.g. ``REPRO_SCALE=2 pytest benchmarks/``.
"""

from __future__ import annotations

import os
import sys

import pytest

sys.path.insert(0, os.path.dirname(__file__))

from bench_utils import scale, write_summaries  # noqa: E402


def pytest_addoption(parser):
    parser.addoption(
        "--cold",
        action="store_true",
        default=False,
        help="Disable engine sharing across a figure's sweep: every "
        "configuration gets a fresh interpreter/backend (cold caches). "
        "Equivalent to REPRO_COLD=1.",
    )


def pytest_configure(config):
    if config.getoption("--cold", default=False):
        os.environ["REPRO_COLD"] = "1"


def pytest_sessionfinish(session, exitstatus):
    """Emit machine-readable BENCH_<fig>.json summaries for CI artifacts."""
    paths = write_summaries()
    if paths:
        print("\nbenchmark summaries written:")
        for path in paths:
            print(f"  {path}")


@pytest.fixture(scope="session")
def repro_scale() -> int:
    return scale()


@pytest.fixture(scope="session")
def ab_fattree_4():
    from repro.topology import ab_fat_tree

    return ab_fat_tree(4)


@pytest.fixture(scope="session")
def fattree_4():
    from repro.topology import fat_tree

    return fat_tree(4)


