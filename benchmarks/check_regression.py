"""Gate benchmark metrics against committed baselines.

CI runs the benchmark harness (which writes ``BENCH_<fig>.json`` under
``benchmarks/out/``) and then invokes this script to diff headline
metrics against the JSON baselines committed under
``benchmarks/baselines/``.  A metric more than ``--tolerance`` (default
30%) *worse* than its baseline fails the build; improvements are
reported but never fail.

Usage::

    python benchmarks/check_regression.py \
        --current benchmarks/out/BENCH_fig7.json \
        --baseline benchmarks/baselines/BENCH_fig7.baseline.json

Only keys present in the baseline's ``metrics`` object are compared, so
adding a new metric to the harness never breaks CI until a baseline for
it is committed.  Metrics are higher-is-better (speedups, throughputs)
by default; latency-style metrics are gated in the other direction —
"worse" means *above* the baseline — by declaring the direction, either
in the baseline entry itself::

    {"metrics": {"p99_ms": {"value": 40.0, "direction": "lower_is_better"}}}

(a bare number keeps the higher-is-better default) or on the command
line with ``--lower-is-better p99_ms`` (repeatable).  ``--require NAME``
(repeatable) additionally fails the check when NAME is absent from the
*current* metrics even if no baseline entry exists — the guard against a
harness change silently dropping a gated metric.
"""

from __future__ import annotations

import argparse
import json
import sys

LOWER_IS_BETTER = "lower_is_better"
HIGHER_IS_BETTER = "higher_is_better"


def load_metrics(path: str) -> dict[str, tuple[float, str | None]]:
    """Read ``{"metrics": {...}}``; values are numbers or value/direction objects."""
    with open(path, encoding="utf-8") as handle:
        payload = json.load(handle)
    metrics = payload.get("metrics") or {}
    loaded: dict[str, tuple[float, str | None]] = {}
    for name, entry in metrics.items():
        if isinstance(entry, dict):
            direction = entry.get("direction")
            if direction not in (None, LOWER_IS_BETTER, HIGHER_IS_BETTER):
                raise SystemExit(
                    f"{path}: metric {name!r} has unknown direction {direction!r}"
                )
            loaded[name] = (float(entry["value"]), direction)
        else:
            loaded[name] = (float(entry), None)
    return loaded


def check_metric(
    name: str,
    value: float,
    base_value: float,
    direction: str,
    tolerance: float,
) -> tuple[str, bool]:
    """One metric's report line and pass verdict."""
    if direction == LOWER_IS_BETTER:
        ceiling = base_value * (1.0 + tolerance)
        ok = value <= ceiling
        bound = f"ceiling={ceiling:.3f}"
    else:
        floor = base_value * (1.0 - tolerance)
        ok = value >= floor
        bound = f"floor={floor:.3f}"
    status = "OK" if ok else "REGRESSION"
    line = (
        f"{name}: current={value:.3f} baseline={base_value:.3f} "
        f"{bound} ({direction}) [{status}]"
    )
    return line, ok


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--current", required=True, help="freshly generated BENCH_<fig>.json")
    parser.add_argument("--baseline", required=True, help="committed baseline JSON")
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.30,
        help="allowed fractional drift past the baseline, in the metric's "
        "worse direction (default 0.30 = 30%%)",
    )
    parser.add_argument(
        "--lower-is-better",
        action="append",
        default=[],
        metavar="NAME",
        help="treat NAME as lower-is-better (repeatable; baseline entries "
        "may also declare their own direction)",
    )
    parser.add_argument(
        "--require",
        action="append",
        default=[],
        metavar="NAME",
        help="fail if NAME is missing from the current metrics (repeatable)",
    )
    args = parser.parse_args(argv)

    baseline = load_metrics(args.baseline)
    current = load_metrics(args.current)
    failures: list[str] = []

    for name in args.require:
        if name not in current:
            failures.append(f"{name}: required metric missing from {args.current}")

    if not baseline and not failures:
        print(f"no metrics in baseline {args.baseline}; nothing to check")
        return 0

    for name, (base_value, direction) in sorted(baseline.items()):
        if name not in current:
            failures.append(f"{name}: missing from {args.current} (baseline {base_value})")
            continue
        value, _ = current[name]
        if direction is None:
            direction = (
                LOWER_IS_BETTER if name in args.lower_is_better else HIGHER_IS_BETTER
            )
        line, ok = check_metric(name, value, base_value, direction, args.tolerance)
        print(line)
        if not ok:
            worse = "above" if direction == LOWER_IS_BETTER else "below"
            failures.append(
                f"{name}: {value:.3f} is more than {args.tolerance:.0%} {worse} "
                f"the baseline {base_value:.3f}"
            )

    if failures:
        print("\nbenchmark regression check FAILED:")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print("\nbenchmark regression check passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
