"""Gate benchmark metrics against committed baselines.

CI runs the benchmark harness (which writes ``BENCH_<fig>.json`` under
``benchmarks/out/``) and then invokes this script to diff headline
metrics against the JSON baselines committed under
``benchmarks/baselines/``.  A metric more than ``--tolerance`` (default
30%) *worse* than its baseline fails the build; improvements are
reported but never fail.

Usage::

    python benchmarks/check_regression.py \
        --current benchmarks/out/BENCH_fig7.json \
        --baseline benchmarks/baselines/BENCH_fig7.baseline.json

Only keys present in the baseline's ``metrics`` object are compared, so
adding a new metric to the harness never breaks CI until a baseline for
it is committed.  All compared metrics are higher-is-better (speedups).
"""

from __future__ import annotations

import argparse
import json
import sys


def load_metrics(path: str) -> dict[str, float]:
    with open(path, encoding="utf-8") as handle:
        payload = json.load(handle)
    metrics = payload.get("metrics") or {}
    return {name: float(value) for name, value in metrics.items()}


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--current", required=True, help="freshly generated BENCH_<fig>.json")
    parser.add_argument("--baseline", required=True, help="committed baseline JSON")
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.30,
        help="allowed fractional drop below the baseline (default 0.30 = 30%%)",
    )
    args = parser.parse_args(argv)

    baseline = load_metrics(args.baseline)
    current = load_metrics(args.current)
    if not baseline:
        print(f"no metrics in baseline {args.baseline}; nothing to check")
        return 0

    failures: list[str] = []
    for name, base_value in sorted(baseline.items()):
        if name not in current:
            failures.append(f"{name}: missing from {args.current} (baseline {base_value})")
            continue
        value = current[name]
        floor = base_value * (1.0 - args.tolerance)
        status = "OK" if value >= floor else "REGRESSION"
        print(
            f"{name}: current={value:.3f} baseline={base_value:.3f} "
            f"floor={floor:.3f} [{status}]"
        )
        if value < floor:
            failures.append(
                f"{name}: {value:.3f} is more than {args.tolerance:.0%} below "
                f"the baseline {base_value:.3f}"
            )

    if failures:
        print("\nbenchmark regression check FAILED:")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print("\nbenchmark regression check passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
