"""E1 (§2 overview): delivery probabilities of the running example.

The paper's overview claims the naive scheme delivers 80% of traffic and
the fault-tolerant scheme 96% under independent 20% link failures, and
that the fault-tolerant scheme is 1-resilient.  This harness regenerates
those numbers and times the analysis.
"""

from __future__ import annotations

from repro.core import sugar
from repro.core.equivalence import output_equivalent
from repro.core.interpreter import Interpreter
from repro.core.packet import DROP
from repro.network import running_example as ex

from bench_utils import print_table


def _analyse():
    bundle = ex.build()
    teleport = sugar.locals_in([("up2", 1), ("up3", 1)], ex.teleport())
    interp = Interpreter(exact=True)

    def delivery(model):
        out = interp.run_packet(model, bundle.ingress_packet)
        return float(out.prob_of(lambda o: o is not DROP and o.get("sw") == 2))

    rows = []
    for failure in ("f0", "f1", "f2"):
        rows.append(
            [
                failure,
                f"{delivery(bundle.models_naive[failure]):.2f}",
                f"{delivery(bundle.models_resilient[failure]):.2f}",
                output_equivalent(
                    bundle.models_resilient[failure], teleport, [bundle.ingress_packet], exact=True
                ),
            ]
        )
    return rows


def test_running_example_delivery(benchmark):
    rows = benchmark.pedantic(_analyse, rounds=3, iterations=1)
    print_table(
        "§2 running example (paper: naive 0.80, resilient 0.96 under f2)",
        ["failure model", "naive", "resilient", "resilient ≡ teleport"],
        rows,
        fig="running_example",
    )
    assert rows[2][1] == "0.80"
    assert rows[2][2] == "0.96"
