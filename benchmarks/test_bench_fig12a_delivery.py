"""Figure 12(a) — delivery probability versus link-failure probability.

Sweeps the per-link failure probability from 1/128 to 1/4 (unbounded
failures) and reports the delivery probability of the three F10 schemes
on the AB FatTree plus ``F10_3,5`` on a standard FatTree.  The expected
shape: ``F10_0`` degrades markedly as failures become common, the
rerouting schemes stay close to 1.
"""

from __future__ import annotations

from fractions import Fraction

import pytest

from repro.routing import f10_model
from repro.topology import ab_fat_tree, fat_tree

from bench_utils import print_table

PROBABILITIES = [Fraction(1, 128), Fraction(1, 64), Fraction(1, 32), Fraction(1, 16), Fraction(1, 8), Fraction(1, 4)]
SERIES = [
    ("AB FatTree, F10_0", "ab", "f10_0"),
    ("AB FatTree, F10_3", "ab", "f10_3"),
    ("AB FatTree, F10_3,5", "ab", "f10_3_5"),
    ("FatTree, F10_3,5", "ft", "f10_3_5"),
]

RESULTS: dict[str, list[float]] = {}


def sweep(topology, scheme):
    return [
        f10_model(topology, 1, scheme=scheme, failure_probability=pr).delivery_probability()
        for pr in PROBABILITIES
    ]


@pytest.mark.parametrize("label,topo_kind,scheme", SERIES, ids=[s[0] for s in SERIES])
def test_delivery_versus_failure_probability(benchmark, label, topo_kind, scheme):
    topology = ab_fat_tree(4) if topo_kind == "ab" else fat_tree(4)
    values = benchmark.pedantic(sweep, args=(topology, scheme), rounds=1, iterations=1)
    RESULTS[label] = values
    assert all(0.0 <= v <= 1.0 for v in values)
    assert values == sorted(values, reverse=True)  # more failures, less delivery


def test_report_figure12a(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    rows = [
        [label] + [f"{value:.4f}" for value in values] for label, values in RESULTS.items()
    ]
    print_table(
        "Figure 12(a) — delivery probability vs link-failure probability (k = ∞)",
        ["scheme"] + [str(pr) for pr in PROBABILITIES],
        rows,
        fig="fig12a",
    )
    # Shape checks from the paper: F10_0 dips well below the rerouting schemes.
    assert RESULTS["AB FatTree, F10_0"][-1] < 0.85
    assert RESULTS["AB FatTree, F10_3,5"][-1] > 0.99
