"""Figure 8 — speedup from parallelising per-switch model construction.

McNetKAT parallelises compilation of the per-switch ``case`` branches
over cores and machines.  The analogous parallel work here is computing
the transition row of every loop-head state of a network model; this
harness measures the wall-clock time with 1, 2, and 4 worker processes
and reports the speedup.  Python's process start-up overhead means the
speedup is visible only for models that are expensive enough, so the
measured curve is flatter than the paper's — the expected shape is simply
"more workers do not hurt, and help on the larger model".
"""

from __future__ import annotations

import os
import time

import pytest

from repro.backends.parallel import transition_rows
from repro.core.interpreter import Interpreter
from repro.core import syntax as s
from repro.routing import f10_model
from repro.topology import ab_fat_tree

from bench_utils import print_table

WORKERS = [1, 2, 4]
RESULTS: list[list[object]] = []


def loop_head_states(model):
    """All loop-head packet states reachable from the model's ingress set."""
    loop = next(node for node in model.policy.walk() if isinstance(node, s.WhileDo))
    interp = Interpreter()
    for packet in model.ingress_packets:
        interp.run_packet(model.policy, packet)
    return loop.body, list(interp._loop_rows[id(loop)].keys())


@pytest.fixture(scope="module")
def workload():
    topo = ab_fat_tree(4)
    model = f10_model(topo, 1, scheme="f10_3_5", failure_probability=1 / 4, count_hops=True)
    body, states = loop_head_states(model)
    return body, states


@pytest.mark.parametrize("workers", WORKERS)
def test_parallel_row_computation(benchmark, workload, workers):
    body, states = workload
    if workers > (os.cpu_count() or 1):
        pytest.skip("not enough cores")
    start = time.perf_counter()
    rows = benchmark.pedantic(
        transition_rows, args=(body, states), kwargs={"workers": workers}, rounds=1, iterations=1
    )
    elapsed = time.perf_counter() - start
    RESULTS.append([workers, len(states), f"{elapsed:.2f}s"])
    assert len(rows) == len(states)


def test_report_figure8(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    rows = list(RESULTS)
    if rows:
        base = float(rows[0][2].rstrip("s"))
        for row in rows:
            row.append(f"{base / float(row[2].rstrip('s')):.2f}x")
    print_table(
        "Figure 8 — parallel speedup of per-switch row computation",
        ["workers", "loop-head states", "time", "speedup"],
        rows,
        fig="fig8",
    )
    assert rows
