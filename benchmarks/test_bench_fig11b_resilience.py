"""Figure 11(b) — k-resilience of the F10 schemes on an AB FatTree.

Regenerates the paper's resilience table: ``F10_0`` is 0-resilient,
``F10_3`` is 2-resilient, and ``F10_3,5`` is 3-resilient; none of them is
resilient to unbounded failures.  The benchmark times the full table
computation (structural certainty analysis for every scheme and bound).
"""

from __future__ import annotations

from repro.analysis.resilience import resilience_table
from repro.routing import f10_model
from repro.topology import ab_fat_tree

from bench_utils import print_table

SCHEMES = ["f10_0", "f10_3", "f10_3_5"]
BOUNDS = [0, 1, 2, 3, 4, None]

#: The table published in the paper (✓ = equivalent to teleport).
EXPECTED = {
    "f10_0": {0: True, 1: False, 2: False, 3: False, 4: False, None: False},
    "f10_3": {0: True, 1: True, 2: True, 3: False, 4: False, None: False},
    "f10_3_5": {0: True, 1: True, 2: True, 3: True, 4: False, None: False},
}


def compute_table():
    topo = ab_fat_tree(4)

    def factory(scheme, k):
        return f10_model(topo, 1, scheme=scheme, failure_probability=1 / 4, max_failures=k)

    return resilience_table(factory, SCHEMES, BOUNDS)


def test_figure11b_resilience_table(benchmark):
    table = benchmark.pedantic(compute_table, rounds=1, iterations=1)
    rows = [
        ["∞" if bound is None else bound]
        + ["✓" if table[scheme][bound] else "✗" for scheme in SCHEMES]
        for bound in BOUNDS
    ]
    print_table(
        "Figure 11(b) — k-resilience (≡ teleport under at most k failures)",
        ["k"] + SCHEMES,
        rows,
        fig="fig11b",
    )
    assert table == EXPECTED
