"""Streaming server throughput — cross-client coalescing vs per-query serving.

The claim under test is the streaming analogue of the batch story: the
asyncio front end (:mod:`repro.service.server`) must recover the batched
serving advantage for traffic that arrives as *independent single
queries from many concurrent clients*.  An open-loop load of
``N_CLIENTS`` asyncio clients bursts the full FatTree k=4 all-pairs
delivery workload (8 destinations x 14 ingress locations = 112 pairs,
repeated ``REPEATS`` times) at one server twice:

* **coalesced** — the admission window on (a few ms): queries arriving
  within one window, across all clients, dispatch as one multi-RHS
  batch;
* **per-query** — ``window=0``: every query dispatches immediately as a
  batch of one, which is what serving without the admission layer
  looks like.

Both configurations run over one warmed session with the result cache
*disabled*, so every streamed query travels the full planner → replica
pool → solve pipeline and the measured ratio is about batch shape, not
cache hits.  The coalesced configuration must sustain **>= 2x** the
per-query throughput (asserted in-test) and a mean coalesced batch size
**> 1** (the direct evidence of cross-client coalescing).

Recorded in ``BENCH_server.json`` and gated in CI against
``benchmarks/baselines/BENCH_server.baseline.json``: ``server_qps`` and
``coalesce_batch_mean`` as higher-is-better floors, and the open-loop
``p99_ms`` tail latency as a *lower-is-better* ceiling (the latency SLO;
``p50_ms`` rides along unGated for trend tracking).
"""

from __future__ import annotations

import asyncio
import gc
import time
from contextlib import contextmanager

import pytest

from repro.network.model import build_model
from repro.routing import ecmp_policy
from repro.service import AnalysisSession, Query
from repro.service.server import QueryServer, StreamClient
from repro.topology import edge_switches, fat_tree

from bench_utils import print_table, record, scale

#: Destinations swept (14 ingress pairs each on the k=4 FatTree -> 112).
N_DESTS = min(8, 6 + 2 * scale())
#: Concurrent open-loop clients the load is spread across.
N_CLIENTS = 8
#: Times each client replays its share of the workload.
REPEATS = 3
#: Admission window of the coalesced configuration, in seconds.
WINDOW = 0.004

RESULTS: list[list[object]] = []
MEASURED: dict[str, object] = {}


@contextmanager
def _quiesced_gc():
    """Collect, then pause the GC for a measured region (both configs get it)."""
    gc.collect()
    was_enabled = gc.isenabled()
    gc.disable()
    try:
        yield
    finally:
        if was_enabled:
            gc.enable()


@pytest.fixture(scope="module")
def workload():
    """One warmed, cache-disabled session plus the 112-pair query list."""
    topo = fat_tree(4)

    def build(dest: int):
        return build_model(topo, routing=ecmp_policy(topo, dest), dest=dest)

    dests = edge_switches(topo)[:N_DESTS]
    models = {dest: build(dest) for dest in dests}
    batch = [
        Query.delivery(packet, dest)
        for dest, model in models.items()
        for packet in model.ingress_packets
    ]
    assert len(batch) >= 100, "the acceptance workload must exceed 100 pairs"
    with AnalysisSession(
        models=models.values(),
        planner="destination",
        workers=4,
        pool_size=2,
        cache=False,
    ) as session:
        session.query_batch(batch)  # untimed warm pass: compile + first solve
        yield session, batch


async def _open_loop(port: int, batch: list[Query], repeats: int) -> dict[str, object]:
    """Burst the workload from ``N_CLIENTS`` clients; gather per-query latency.

    Open loop: every client writes all of its requests at t0 without
    waiting for replies (send rate is not gated by service rate), then
    awaits them all.  Latency is measured per query from its send to the
    arrival of its correlated reply.
    """

    async def client(idx: int):
        conn = await StreamClient.connect("127.0.0.1", port)
        share = batch[idx::N_CLIENTS]
        sent: list[tuple[float, asyncio.Future]] = []
        for _ in range(repeats):
            for query in share:
                message = {
                    "kind": query.kind,
                    "ingress": [query.ingress["sw"], query.ingress["pt"]],
                    "dest": query.dest,
                }
                sent.append((time.perf_counter(), await conn.send(message)))
        latencies: list[float] = []
        batched: list[int] = []
        values: list[float] = []
        for t0, future in sent:
            reply = await future
            latencies.append(time.perf_counter() - t0)
            assert "error" not in reply, reply
            batched.append(reply["batched"])
            values.append(reply["value"])
        await conn.aclose()
        return latencies, batched, values

    start = time.perf_counter()
    outcomes = await asyncio.gather(*[client(i) for i in range(N_CLIENTS)])
    elapsed = time.perf_counter() - start
    latencies = [lat for late, _, _ in outcomes for lat in late]
    batched = [b for _, bat, _ in outcomes for b in bat]
    queries = sum(len(late) for late, _, _ in outcomes)
    return {
        "elapsed": elapsed,
        "queries": queries,
        "qps": queries / elapsed,
        "latencies": latencies,
        "batched": batched,
        "values": [v for _, _, vals in outcomes for v in vals],
    }


def _serve_and_load(session, batch, window: float) -> dict[str, object]:
    """Run one server configuration and drive the open-loop load at it.

    Each configuration starts from the identical warm-plans/cold-solver
    state (``clear_cache(keep_plans=True)``): compiled plans are kept,
    factorizations and solution rows are dropped.  The per-query
    configuration therefore pays one single-RHS solve per distinct query
    where the coalesced configuration pays one *multi-RHS* solve per
    destination — the batch-shaped advantage the admission window exists
    to recover, not a cache artifact.
    """
    session.clear_cache(keep_plans=True)

    async def run():
        server = QueryServer(session, window=window, max_batch=256, max_pending=4096)
        await server.start()
        try:
            outcome = await _open_loop(server.port, batch, REPEATS)
            outcome["stats"] = server.coalescer.stats()
            return outcome
        finally:
            await server.stop()

    return asyncio.run(run())


def _percentile(values: list[float], fraction: float) -> float:
    ranked = sorted(values)
    index = min(len(ranked) - 1, max(0, round(fraction * (len(ranked) - 1))))
    return ranked[index]


def test_streaming_open_loop(benchmark, workload):
    """Measure both configurations over the identical burst workload."""
    session, batch = workload

    def both():
        with _quiesced_gc():
            return (
                _serve_and_load(session, batch, 0.0),
                _serve_and_load(session, batch, WINDOW),
            )

    nobatch, coalesced = benchmark.pedantic(both, rounds=1, iterations=1)
    MEASURED["nobatch"] = nobatch
    MEASURED["coalesced"] = coalesced

    for label, outcome in (("window=0", nobatch), (f"window={WINDOW * 1000:g}ms", coalesced)):
        stats = outcome["stats"]
        RESULTS.append(
            [
                label,
                outcome["queries"],
                f"{outcome['elapsed']:.2f}s",
                f"{outcome['qps']:.1f}",
                f"{stats['batch_mean']:.1f}",
                f"{_percentile(outcome['latencies'], 0.50) * 1000:.1f}",
                f"{_percentile(outcome['latencies'], 0.99) * 1000:.1f}",
            ]
        )
    # Every query of every repeat was answered, in both configurations.
    expected = len(batch) * REPEATS
    assert nobatch["queries"] == expected
    assert coalesced["queries"] == expected
    # window=0 really disabled coalescing: every dispatch was a batch of 1.
    assert nobatch["stats"]["batch_mean"] == pytest.approx(1.0)
    # The two configurations answered with identical values.
    assert coalesced["values"] == pytest.approx(nobatch["values"], abs=1e-12)
    assert all(0.0 <= value <= 1.0 for value in coalesced["values"])


def test_streaming_coalesce_speedup(benchmark):
    """The tentpole claim: the admission window is worth >= 2x under load."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    nobatch = MEASURED.get("nobatch")
    coalesced = MEASURED.get("coalesced")
    assert nobatch and coalesced, "the open-loop measurement did not run"

    speedup = coalesced["qps"] / nobatch["qps"]
    batch_mean = coalesced["stats"]["batch_mean"]
    p50_ms = _percentile(coalesced["latencies"], 0.50) * 1000
    p99_ms = _percentile(coalesced["latencies"], 0.99) * 1000
    record(
        "server",
        "Streaming server — cross-client coalescing vs per-query (FatTree k=4, "
        f"{N_CLIENTS} open-loop clients)",
        ["config", "queries", "time", "q/s", "mean batch", "p50 ms", "p99 ms"],
        RESULTS,
        metrics={
            "server_qps": coalesced["qps"],
            "server_qps_nobatch": nobatch["qps"],
            "server_coalesce_speedup": speedup,
            "coalesce_batch_mean": batch_mean,
            "p50_ms": p50_ms,
            "p99_ms": p99_ms,
        },
    )
    assert batch_mean > 1.0, (
        f"mean coalesced batch size {batch_mean:.2f} shows no cross-client "
        "coalescing despite 8 concurrent clients in one admission window"
    )
    assert speedup >= 2.0, (
        f"coalesced serving ({coalesced['qps']:.1f} q/s) not >= 2x per-query "
        f"serving ({nobatch['qps']:.1f} q/s)"
    )


def test_report_server(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    print_table(
        "Streaming server — cross-client coalescing vs per-query (FatTree k=4, "
        f"{N_CLIENTS} open-loop clients)",
        ["config", "queries", "time", "q/s", "mean batch", "p50 ms", "p99 ms"],
        RESULTS,
        fig="server",
    )
    assert RESULTS
