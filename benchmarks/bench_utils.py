"""Helpers shared by the benchmark harnesses."""

from __future__ import annotations

import os


def scale() -> int:
    """The REPRO_SCALE factor controlling how far parameter sweeps extend."""
    try:
        return max(1, int(os.environ.get("REPRO_SCALE", "1")))
    except ValueError:
        return 1


def print_table(title: str, header: list[str], rows: list[list[object]]) -> None:
    """Uniform plain-text rendering of a reproduced table/series."""
    print()
    print(f"== {title}")
    widths = [
        max(len(str(header[i])), max((len(str(r[i])) for r in rows), default=0))
        for i in range(len(header))
    ]
    print("  " + "  ".join(str(h).ljust(w) for h, w in zip(header, widths)))
    for row in rows:
        print("  " + "  ".join(str(c).ljust(w) for c, w in zip(row, widths)))
