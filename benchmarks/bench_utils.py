"""Helpers shared by the benchmark harnesses.

Besides pretty-printing reproduced tables, the harness collects every
recorded figure into machine-readable ``BENCH_<fig>.json`` summaries
(written at session end by the ``pytest_sessionfinish`` hook in
``conftest.py``).  CI uploads those files as artifacts, so the perf
trajectory of the repo is tracked run over run.
"""

from __future__ import annotations

import json
import os
import time

#: Figure name -> recorded payload, collected across one pytest session.
_RECORDS: dict[str, dict[str, object]] = {}


def scale() -> int:
    """The REPRO_SCALE factor controlling how far parameter sweeps extend."""
    try:
        return max(1, int(os.environ.get("REPRO_SCALE", "1")))
    except ValueError:
        return 1


def output_dir() -> str:
    """Directory for ``BENCH_*.json`` summaries (override: BENCH_OUTPUT_DIR)."""
    default = os.path.join(os.path.dirname(os.path.abspath(__file__)), "out")
    return os.environ.get("BENCH_OUTPUT_DIR", default)


def record(
    fig: str,
    title: str,
    header: list[str],
    rows: list[list[object]],
    phases: dict[str, float] | None = None,
) -> None:
    """Register one figure's reproduced rows for JSON emission.

    ``phases`` optionally attaches per-phase wall-clock seconds (compile,
    solve, query, ...) so artifacts capture where the time went, not just
    totals.  Re-recording a figure merges its phases and replaces rows.
    """
    entry = _RECORDS.setdefault(
        fig, {"title": title, "header": header, "rows": [], "phases": {}}
    )
    entry["title"] = title
    entry["header"] = header
    entry["rows"] = rows
    if phases:
        merged = dict(entry.get("phases") or {})
        merged.update({name: round(float(value), 6) for name, value in phases.items()})
        entry["phases"] = merged


def print_table(
    title: str,
    header: list[str],
    rows: list[list[object]],
    fig: str | None = None,
) -> None:
    """Uniform plain-text rendering of a reproduced table/series.

    With ``fig`` the table is also recorded for the ``BENCH_<fig>.json``
    summary artifact.
    """
    print()
    print(f"== {title}")
    widths = [
        max(len(str(header[i])), max((len(str(r[i])) for r in rows), default=0))
        for i in range(len(header))
    ]
    print("  " + "  ".join(str(h).ljust(w) for h, w in zip(header, widths)))
    for row in rows:
        print("  " + "  ".join(str(c).ljust(w) for c, w in zip(row, widths)))
    if fig is not None:
        record(fig, title, header, rows)


def write_summaries() -> list[str]:
    """Write one ``BENCH_<fig>.json`` per recorded figure; return the paths."""
    if not _RECORDS:
        return []
    directory = output_dir()
    os.makedirs(directory, exist_ok=True)
    written: list[str] = []
    stamp = time.strftime("%Y-%m-%dT%H:%M:%S%z")
    for fig, entry in sorted(_RECORDS.items()):
        payload = {
            "fig": fig,
            "generated_at": stamp,
            "repro_scale": scale(),
            **entry,
        }
        path = os.path.join(directory, f"BENCH_{fig}.json")
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, default=str)
            handle.write("\n")
        written.append(path)
    return written
