"""Helpers shared by the benchmark harnesses.

Besides pretty-printing reproduced tables, the harness collects every
recorded figure into machine-readable ``BENCH_<fig>.json`` summaries
(written at session end by the ``pytest_sessionfinish`` hook in
``conftest.py``).  CI uploads those files as artifacts, so the perf
trajectory of the repo is tracked run over run.
"""

from __future__ import annotations

import json
import os
import time

#: Figure name -> recorded payload, collected across one pytest session.
_RECORDS: dict[str, dict[str, object]] = {}

#: (figure, kind, options) -> shared engine instance (see shared_interpreter /
#: shared_backend).  Cleared per session; bypassed entirely in cold mode.
_SHARED: dict[tuple, object] = {}


def scale() -> int:
    """The REPRO_SCALE factor controlling how far parameter sweeps extend."""
    try:
        return max(1, int(os.environ.get("REPRO_SCALE", "1")))
    except ValueError:
        return 1


def cold() -> bool:
    """Whether engine sharing is disabled (``--cold`` / ``REPRO_COLD=1``).

    Cold mode gives every benchmark configuration a fresh interpreter or
    backend, so each measurement includes full compilation — the escape
    hatch for measuring cold-start costs rather than warm sweeps.
    """
    return os.environ.get("REPRO_COLD", "").strip() not in ("", "0")


def shared_interpreter(fig: str, **options):
    """One forward interpreter shared by every configuration of ``fig``.

    Sharing keeps the interpreter's loop caches, compiled bodies, and the
    FDD manager's interned nodes alive across a figure's parameter sweep
    (the ROADMAP's "share one backend instance across benchmark figures"
    item).  With ``--cold`` (or ``REPRO_COLD=1``) a fresh instance is
    returned every call instead.
    """
    from repro.core.interpreter import Interpreter

    if cold():
        return Interpreter(**options)
    key = (fig, "interpreter", tuple(sorted(options.items())))
    engine = _SHARED.get(key)
    if engine is None:
        engine = _SHARED[key] = Interpreter(**options)
    return engine


def shared_backend(fig: str, name: str, **options):
    """One registry backend shared by every configuration of ``fig``.

    Same contract as :func:`shared_interpreter`, for registry backends
    (``"native"``, ``"matrix"``, ``"parallel"``): plans, transition
    matrices, and loop factorizations persist across the sweep unless
    cold mode is active.
    """
    from repro.backends import get_backend

    if cold():
        return get_backend(name, **options)
    key = (fig, name, tuple(sorted(options.items())))
    engine = _SHARED.get(key)
    if engine is None:
        engine = _SHARED[key] = get_backend(name, **options)
    return engine


def output_dir() -> str:
    """Directory for ``BENCH_*.json`` summaries (override: BENCH_OUTPUT_DIR)."""
    default = os.path.join(os.path.dirname(os.path.abspath(__file__)), "out")
    return os.environ.get("BENCH_OUTPUT_DIR", default)


def record(
    fig: str,
    title: str,
    header: list[str],
    rows: list[list[object]],
    phases: dict[str, float] | None = None,
    metrics: dict[str, float] | None = None,
) -> None:
    """Register one figure's reproduced rows for JSON emission.

    ``phases`` optionally attaches per-phase wall-clock seconds (compile,
    solve, query, ...) so artifacts capture where the time went, not just
    totals.  ``metrics`` attaches headline scalars (e.g. the fig7
    interpreted-vs-compiled ``speedup``) that CI diffs against committed
    baselines.  Re-recording a figure merges phases/metrics and replaces
    rows.
    """
    entry = _RECORDS.setdefault(
        fig, {"title": title, "header": header, "rows": [], "phases": {}, "metrics": {}}
    )
    entry["title"] = title
    entry["header"] = header
    entry["rows"] = rows
    if phases:
        merged = dict(entry.get("phases") or {})
        merged.update({name: round(float(value), 6) for name, value in phases.items()})
        entry["phases"] = merged
    if metrics:
        merged = dict(entry.get("metrics") or {})
        merged.update({name: round(float(value), 6) for name, value in metrics.items()})
        entry["metrics"] = merged


def print_table(
    title: str,
    header: list[str],
    rows: list[list[object]],
    fig: str | None = None,
) -> None:
    """Uniform plain-text rendering of a reproduced table/series.

    With ``fig`` the table is also recorded for the ``BENCH_<fig>.json``
    summary artifact.
    """
    print()
    print(f"== {title}")
    widths = [
        max(len(str(header[i])), max((len(str(r[i])) for r in rows), default=0))
        for i in range(len(header))
    ]
    print("  " + "  ".join(str(h).ljust(w) for h, w in zip(header, widths)))
    for row in rows:
        print("  " + "  ".join(str(c).ljust(w) for c, w in zip(row, widths)))
    if fig is not None:
        record(fig, title, header, rows)


def write_summaries() -> list[str]:
    """Write one ``BENCH_<fig>.json`` per recorded figure; return the paths."""
    if not _RECORDS:
        return []
    directory = output_dir()
    os.makedirs(directory, exist_ok=True)
    written: list[str] = []
    stamp = time.strftime("%Y-%m-%dT%H:%M:%S%z")
    for fig, entry in sorted(_RECORDS.items()):
        payload = {
            "fig": fig,
            "generated_at": stamp,
            "repro_scale": scale(),
            **entry,
        }
        path = os.path.join(directory, f"BENCH_{fig}.json")
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, default=str)
            handle.write("\n")
        written.append(path)
    return written
