"""Figure 7 — scalability of model construction on FatTree topologies.

The paper measures the time to construct the stochastic-matrix model of a
FatTree running ECMP, with and without link failures, using the native
backend and the PRISM backend.  This harness reproduces the sweep at
reduced sizes (Python constant factors) and reports per-configuration
times; the expected shape is: the native backend scales to larger
FatTrees than the PRISM pipeline, and failures make both slower.

Two claims are under test on the native path:

* the *compiled-body fast path* (loop bodies compiled once into
  per-switch FDDs, rows computed by diagram evaluation) constructs the
  model at least 3x faster than pure AST interpretation over the sweep —
  the headline speedup recorded in ``BENCH_fig7.json`` and gated by CI
  against a committed baseline;
* both paths produce identical output distributions (asserted to 1e-9).

The sweep also runs the batched matrix backend, reporting its one-time
FDD/matrix compilation separately from the batched all-ingress query so
the artifact records where each backend spends its time.  The matrix
sweep extends past the interpreted backends to FatTree k=10 (125
switches) — cheap on the no-failure configuration because assembly and
the ``splu`` solve stay tiny even as the topology grows; the k=10
failure configuration is compile-bound (minutes of FDD construction)
and only runs at ``REPRO_SCALE >= 2``.

A third claim landed with the vectorized assembly kernel: single-pass
matrix assembly (BFS exploration fused with preallocated-triplet-buffer
row materialization, jump-table FDD walks, prepared leaf actions) must
be at least **3x** faster than the two-pass ``Dist``-valued reference
implementation over the same sweep, recorded as the
``assembly_speedup`` metric of ``BENCH_fig7.json`` and gated by CI
against the committed baseline.
"""

from __future__ import annotations

import time

import pytest

from repro.backends.prism import PrismBackend
from repro.core.interpreter import Interpreter
from repro.failure.models import independent_failure_program
from repro.network.model import build_model
from repro.routing import downward_failable_ports, ecmp_policy
from repro.topology import fat_tree

from bench_utils import print_table, record, scale, shared_backend, shared_interpreter

#: FatTree parameters swept by the native backend (scaled by REPRO_SCALE).
NATIVE_SIZES = [4, 6, 8][: 2 + scale()]
#: The matrix backend sweeps the native sizes plus k=10 (125 switches) —
#: past the point where the interpreted sweep is practical.  The k=10
#: failure configuration is gated behind REPRO_SCALE>=2: its FDD compile
#: alone takes minutes, while assembly/solve stay in the tens of ms.
MATRIX_SIZES = NATIVE_SIZES + [10]
#: The PRISM pipeline explores the full product state space and is kept small.
PRISM_SIZES = [4]
#: Timed repetitions per loop stage of the assembly-kernel comparison.
ASSEMBLY_REPS = 10

RESULTS: list[list[object]] = []
#: Accumulated wall-clock totals of the interpreted-vs-compiled comparison.
SPEEDUP_TOTALS = {"interpreted": 0.0, "compiled": 0.0}
#: Accumulated wall-clock totals of the assembly-kernel comparison.
ASSEMBLY_TOTALS = {"vectorized": 0.0, "reference": 0.0, "rows": 0}


def build(p: int, failure_probability: float | None):
    topo = fat_tree(p)
    failable = downward_failable_ports(topo) if failure_probability else None
    failure = (
        independent_failure_program(failable, failure_probability)
        if failure_probability
        else None
    )
    return build_model(
        topo,
        routing=ecmp_policy(topo, 1),
        dest=1,
        failure=failure,
        failable=failable,
    )


def fail_label(failure_probability: float | None) -> str:
    return "0" if failure_probability is None else "1/1000"


def native_construct(p: int, failure_probability: float | None):
    model = build(p, failure_probability)
    interpreter = shared_interpreter("fig7")
    return model.output_distributions(interpreter=interpreter)


def prism_construct(p: int, failure_probability: float | None):
    model = build(p, failure_probability)
    backend = PrismBackend()
    return backend.probability(model.policy, model.ingress_packets[0], model.delivered)


def matrix_construct(p: int, failure_probability: float | None):
    model = build(p, failure_probability)
    backend = shared_backend("fig7", "matrix")
    outputs = backend.output_distributions(model.policy, model.ingress_packets)
    return outputs, backend.timings()


@pytest.mark.parametrize("p", NATIVE_SIZES)
@pytest.mark.parametrize("failure_probability", [None, 1 / 1000], ids=["f0", "f1000"])
def test_native_backend_scaling(benchmark, p, failure_probability):
    start = time.perf_counter()
    outputs = benchmark.pedantic(native_construct, args=(p, failure_probability), rounds=1, iterations=1)
    elapsed = time.perf_counter() - start
    switches = 5 * p * p // 4
    RESULTS.append(["native", p, switches, fail_label(failure_probability), f"{elapsed:.2f}s", "-", "-"])
    assert len(outputs) > 0


@pytest.mark.parametrize("p", NATIVE_SIZES)
@pytest.mark.parametrize("failure_probability", [None, 1 / 1000], ids=["f0", "f1000"])
def test_interpreted_vs_compiled_construction(benchmark, p, failure_probability):
    """One configuration of the headline comparison.

    Fresh interpreters on both sides (construction must include each
    path's full one-time work); distributions must agree within 1e-9.
    """

    def construct():
        model = build(p, failure_probability)
        t0 = time.perf_counter()
        interpreted = model.output_distributions(
            interpreter=Interpreter(compile_bodies=False)
        )
        interpreted_s = time.perf_counter() - t0

        model = build(p, failure_probability)
        t0 = time.perf_counter()
        compiled = model.output_distributions(interpreter=Interpreter())
        compiled_s = time.perf_counter() - t0
        return interpreted, compiled, interpreted_s, compiled_s

    interpreted, compiled, interpreted_s, compiled_s = benchmark.pedantic(
        construct, rounds=1, iterations=1
    )
    SPEEDUP_TOTALS["interpreted"] += interpreted_s
    SPEEDUP_TOTALS["compiled"] += compiled_s
    switches = 5 * p * p // 4
    ratio = interpreted_s / compiled_s if compiled_s else float("inf")
    RESULTS.append([
        "native/interp", p, switches, fail_label(failure_probability),
        f"{interpreted_s:.2f}s", f"{compiled_s:.2f}s", f"{ratio:.2f}x",
    ])
    for packet, dist in interpreted.items():
        fast = compiled[packet]
        for outcome in set(dist.support()) | set(fast.support()):
            assert float(fast(outcome)) == pytest.approx(float(dist(outcome)), abs=1e-9)


@pytest.mark.parametrize("p", MATRIX_SIZES)
@pytest.mark.parametrize("failure_probability", [None, 1 / 1000], ids=["f0", "f1000"])
def test_matrix_backend_scaling(benchmark, p, failure_probability):
    if p not in NATIVE_SIZES and failure_probability is not None and scale() < 2:
        pytest.skip(
            "k=10 with failures is compile-bound (minutes of FDD "
            "construction); set REPRO_SCALE>=2 to include it"
        )
    start = time.perf_counter()
    outputs, timings = benchmark.pedantic(
        matrix_construct, args=(p, failure_probability), rounds=1, iterations=1
    )
    elapsed = time.perf_counter() - start
    switches = 5 * p * p // 4
    compile_s = timings.get("compile", 0.0)
    # "query" is end-to-end query time; "assemble"/"factorize"/"solve" are
    # sub-phases nested inside it.
    query_s = timings.get("query", 0.0)
    RESULTS.append(
        [
            "matrix",
            p,
            switches,
            fail_label(failure_probability),
            f"{elapsed:.2f}s",
            f"{compile_s:.2f}s",
            f"{query_s:.2f}s",
        ]
    )
    assert len(outputs) > 0


@pytest.mark.parametrize("p", PRISM_SIZES)
@pytest.mark.parametrize("failure_probability", [None, 1 / 1000], ids=["f0", "f1000"])
def test_prism_backend_scaling(benchmark, p, failure_probability):
    start = time.perf_counter()
    probability = benchmark.pedantic(prism_construct, args=(p, failure_probability), rounds=1, iterations=1)
    elapsed = time.perf_counter() - start
    switches = 5 * p * p // 4
    RESULTS.append(["prism", p, switches, fail_label(failure_probability), f"{elapsed:.2f}s", "-", "-"])
    assert float(probability) > 0.99


def assembly_compare(p: int, failure_probability: float | None):
    """Time cold assemblies of every loop stage through both kernels.

    A warmed backend supplies each loop stage's compiled body FDD, shared
    domains and seed order (the BFS frontier of the batched all-ingress
    query); both kernels then re-assemble every stage from scratch — no
    row cache, so each repetition pays the full exploration + row
    materialization cost the vectorized single pass is meant to collapse.
    """
    from repro.backends import MatrixBackend
    from repro.core.fdd.matrix import fdd_to_matrix, fdd_to_matrix_reference

    model = build(p, failure_probability)
    with MatrixBackend() as backend:
        backend.output_distributions(model.policy, model.ingress_packets)
        vectorized_s = reference_s = 0.0
        rows = 0
        for stage in backend.plan(model.policy).loop_stages:
            if stage.body_fdd is None:
                continue

            def absorbing(cls, stage=stage):
                return not stage.guard_holds(cls)

            for _ in range(ASSEMBLY_REPS):
                t0 = time.perf_counter()
                matrix = fdd_to_matrix(
                    stage.body_fdd,
                    extra_values=stage.domains,
                    seeds=stage.seed_order,
                    absorbing_when=absorbing,
                )
                vectorized_s += time.perf_counter() - t0
                t0 = time.perf_counter()
                fdd_to_matrix_reference(
                    stage.body_fdd,
                    extra_values=stage.domains,
                    seeds=stage.seed_order,
                    absorbing_when=absorbing,
                )
                reference_s += time.perf_counter() - t0
            rows += matrix.assembled_rows
        return vectorized_s, reference_s, rows


@pytest.mark.parametrize("p", NATIVE_SIZES)
@pytest.mark.parametrize("failure_probability", [None, 1 / 1000], ids=["f0", "f1000"])
def test_assembly_kernel_comparison(benchmark, p, failure_probability):
    """One configuration of the assembly-kernel comparison."""
    vectorized_s, reference_s, rows = benchmark.pedantic(
        assembly_compare, args=(p, failure_probability), rounds=1, iterations=1
    )
    ASSEMBLY_TOTALS["vectorized"] += vectorized_s
    ASSEMBLY_TOTALS["reference"] += reference_s
    ASSEMBLY_TOTALS["rows"] += rows
    switches = 5 * p * p // 4
    ratio = reference_s / vectorized_s if vectorized_s else float("inf")
    RESULTS.append([
        "matrix/assembly", p, switches, fail_label(failure_probability),
        f"{reference_s:.3f}s", f"{vectorized_s:.3f}s", f"{ratio:.2f}x",
    ])
    assert rows > 0


def test_compiled_body_speedup(benchmark):
    """The tentpole claim: compiled-body construction is ≥3x faster.

    Summed over the whole fattree sweep (all sizes, with and without
    failures), model construction through the compiled-body fast path
    must be at least 3x faster than AST interpretation.  The measured
    ratio is recorded as the ``speedup`` metric of ``BENCH_fig7.json``
    and diffed against a committed baseline by CI.
    """
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    interpreted_s = SPEEDUP_TOTALS["interpreted"]
    compiled_s = SPEEDUP_TOTALS["compiled"]
    assert compiled_s > 0.0, "comparison sweep did not run"
    speedup = interpreted_s / compiled_s
    record(
        "fig7",
        "Figure 7 — model construction time (native vs matrix vs PRISM, with/without failures)",
        ["backend", "p", "switches", "pr(fail)", "time", "compile/interp-compiled", "query/speedup"],
        RESULTS,
        phases={
            "interpreted_construction_s": interpreted_s,
            "compiled_construction_s": compiled_s,
        },
        metrics={"speedup": speedup},
    )
    assert speedup >= 3.0, (
        f"compiled-body construction ({compiled_s:.2f}s) not ≥3x faster than "
        f"AST interpretation ({interpreted_s:.2f}s) over the fig7 sweep"
    )


def test_vectorized_assembly_speedup(benchmark):
    """The second gated claim: single-pass vectorized assembly is ≥3x faster.

    Summed over the whole fattree sweep (all native sizes, with and
    without failures), cold matrix assembly through the vectorized
    single-pass kernel must be at least 3x faster than the two-pass
    ``Dist``-valued reference implementation.  The measured ratio is
    recorded as the ``assembly_speedup`` metric of ``BENCH_fig7.json``
    and diffed against a committed baseline by CI.
    """
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    vectorized_s = ASSEMBLY_TOTALS["vectorized"]
    reference_s = ASSEMBLY_TOTALS["reference"]
    assert vectorized_s > 0.0, "assembly comparison sweep did not run"
    speedup = reference_s / vectorized_s
    record(
        "fig7",
        "Figure 7 — model construction time (native vs matrix vs PRISM, with/without failures)",
        ["backend", "p", "switches", "pr(fail)", "time", "compile/interp-compiled", "query/speedup"],
        RESULTS,
        phases={
            "reference_assembly_s": reference_s,
            "vectorized_assembly_s": vectorized_s,
        },
        metrics={
            "assembly_speedup": speedup,
            "assembly_rows": float(ASSEMBLY_TOTALS["rows"]),
        },
    )
    assert speedup >= 3.0, (
        f"vectorized assembly ({vectorized_s:.3f}s) not ≥3x faster than the "
        f"reference two-pass kernel ({reference_s:.3f}s) over the fig7 sweep"
    )


def test_report_figure7(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    print_table(
        "Figure 7 — model construction time (native vs matrix vs PRISM, with/without failures)",
        ["backend", "p", "switches", "pr(fail)", "time", "compile/interp-compiled", "query/speedup"],
        RESULTS,
        fig="fig7",
    )
    assert RESULTS
