"""Figure 7 — scalability of model construction on FatTree topologies.

The paper measures the time to construct the stochastic-matrix model of a
FatTree running ECMP, with and without link failures, using the native
backend and the PRISM backend.  This harness reproduces the sweep at
reduced sizes (Python constant factors) and reports per-configuration
times; the expected shape is: the native backend scales to larger
FatTrees than the PRISM pipeline, and failures make both slower.

The sweep also runs the batched matrix backend, reporting its one-time
FDD/matrix compilation separately from the batched all-ingress query so
the artifact records where each backend spends its time.
"""

from __future__ import annotations

import time

import pytest

from repro.backends import MatrixBackend
from repro.backends.prism import PrismBackend
from repro.core.interpreter import Interpreter
from repro.failure.models import independent_failure_program
from repro.network.model import build_model
from repro.routing import downward_failable_ports, ecmp_policy
from repro.topology import fat_tree

from bench_utils import print_table, scale

#: FatTree parameters swept by the native backend (scaled by REPRO_SCALE).
NATIVE_SIZES = [4, 6, 8][: 2 + scale()]
#: The matrix backend sweeps the same sizes as the native backend.
MATRIX_SIZES = NATIVE_SIZES
#: The PRISM pipeline explores the full product state space and is kept small.
PRISM_SIZES = [4]

RESULTS: list[list[object]] = []


def build(p: int, failure_probability: float | None):
    topo = fat_tree(p)
    failable = downward_failable_ports(topo) if failure_probability else None
    failure = (
        independent_failure_program(failable, failure_probability)
        if failure_probability
        else None
    )
    return build_model(
        topo,
        routing=ecmp_policy(topo, 1),
        dest=1,
        failure=failure,
        failable=failable,
    )


def native_construct(p: int, failure_probability: float | None):
    model = build(p, failure_probability)
    interpreter = Interpreter()
    return model.output_distributions(interpreter=interpreter)


def prism_construct(p: int, failure_probability: float | None):
    model = build(p, failure_probability)
    backend = PrismBackend()
    return backend.probability(model.policy, model.ingress_packets[0], model.delivered)


def matrix_construct(p: int, failure_probability: float | None):
    model = build(p, failure_probability)
    backend = MatrixBackend()
    outputs = backend.output_distributions(model.policy, model.ingress_packets)
    return outputs, backend.timings()


@pytest.mark.parametrize("p", NATIVE_SIZES)
@pytest.mark.parametrize("failure_probability", [None, 1 / 1000], ids=["f0", "f1000"])
def test_native_backend_scaling(benchmark, p, failure_probability):
    start = time.perf_counter()
    outputs = benchmark.pedantic(native_construct, args=(p, failure_probability), rounds=1, iterations=1)
    elapsed = time.perf_counter() - start
    switches = 5 * p * p // 4
    RESULTS.append(["native", p, switches, "0" if failure_probability is None else "1/1000", f"{elapsed:.2f}s", "-", "-"])
    assert len(outputs) > 0


@pytest.mark.parametrize("p", MATRIX_SIZES)
@pytest.mark.parametrize("failure_probability", [None, 1 / 1000], ids=["f0", "f1000"])
def test_matrix_backend_scaling(benchmark, p, failure_probability):
    start = time.perf_counter()
    outputs, timings = benchmark.pedantic(
        matrix_construct, args=(p, failure_probability), rounds=1, iterations=1
    )
    elapsed = time.perf_counter() - start
    switches = 5 * p * p // 4
    compile_s = timings.get("compile", 0.0)
    # "query" is end-to-end query time; "build"/"solve" are sub-phases of it.
    query_s = timings.get("query", 0.0)
    RESULTS.append(
        [
            "matrix",
            p,
            switches,
            "0" if failure_probability is None else "1/1000",
            f"{elapsed:.2f}s",
            f"{compile_s:.2f}s",
            f"{query_s:.2f}s",
        ]
    )
    assert len(outputs) > 0


@pytest.mark.parametrize("p", PRISM_SIZES)
@pytest.mark.parametrize("failure_probability", [None, 1 / 1000], ids=["f0", "f1000"])
def test_prism_backend_scaling(benchmark, p, failure_probability):
    start = time.perf_counter()
    probability = benchmark.pedantic(prism_construct, args=(p, failure_probability), rounds=1, iterations=1)
    elapsed = time.perf_counter() - start
    switches = 5 * p * p // 4
    RESULTS.append(["prism", p, switches, "0" if failure_probability is None else "1/1000", f"{elapsed:.2f}s", "-", "-"])
    assert float(probability) > 0.99


def test_report_figure7(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    print_table(
        "Figure 7 — model construction time (native vs matrix vs PRISM, with/without failures)",
        ["backend", "p", "switches", "pr(fail)", "time", "compile", "query"],
        RESULTS,
        fig="fig7",
    )
    assert RESULTS
