"""Figure 7 — scalability of model construction on FatTree topologies.

The paper measures the time to construct the stochastic-matrix model of a
FatTree running ECMP, with and without link failures, using the native
backend and the PRISM backend.  This harness reproduces the sweep at
reduced sizes (Python constant factors) and reports per-configuration
times; the expected shape is: the native backend scales to larger
FatTrees than the PRISM pipeline, and failures make both slower.

Two claims are under test on the native path:

* the *compiled-body fast path* (loop bodies compiled once into
  per-switch FDDs, rows computed by diagram evaluation) constructs the
  model at least 3x faster than pure AST interpretation over the sweep —
  the headline speedup recorded in ``BENCH_fig7.json`` and gated by CI
  against a committed baseline;
* both paths produce identical output distributions (asserted to 1e-9).

The sweep also runs the batched matrix backend, reporting its one-time
FDD/matrix compilation separately from the batched all-ingress query so
the artifact records where each backend spends its time.
"""

from __future__ import annotations

import time

import pytest

from repro.backends.prism import PrismBackend
from repro.core.interpreter import Interpreter
from repro.failure.models import independent_failure_program
from repro.network.model import build_model
from repro.routing import downward_failable_ports, ecmp_policy
from repro.topology import fat_tree

from bench_utils import print_table, record, scale, shared_backend, shared_interpreter

#: FatTree parameters swept by the native backend (scaled by REPRO_SCALE).
NATIVE_SIZES = [4, 6, 8][: 2 + scale()]
#: The matrix backend sweeps the same sizes as the native backend.
MATRIX_SIZES = NATIVE_SIZES
#: The PRISM pipeline explores the full product state space and is kept small.
PRISM_SIZES = [4]

RESULTS: list[list[object]] = []
#: Accumulated wall-clock totals of the interpreted-vs-compiled comparison.
SPEEDUP_TOTALS = {"interpreted": 0.0, "compiled": 0.0}


def build(p: int, failure_probability: float | None):
    topo = fat_tree(p)
    failable = downward_failable_ports(topo) if failure_probability else None
    failure = (
        independent_failure_program(failable, failure_probability)
        if failure_probability
        else None
    )
    return build_model(
        topo,
        routing=ecmp_policy(topo, 1),
        dest=1,
        failure=failure,
        failable=failable,
    )


def fail_label(failure_probability: float | None) -> str:
    return "0" if failure_probability is None else "1/1000"


def native_construct(p: int, failure_probability: float | None):
    model = build(p, failure_probability)
    interpreter = shared_interpreter("fig7")
    return model.output_distributions(interpreter=interpreter)


def prism_construct(p: int, failure_probability: float | None):
    model = build(p, failure_probability)
    backend = PrismBackend()
    return backend.probability(model.policy, model.ingress_packets[0], model.delivered)


def matrix_construct(p: int, failure_probability: float | None):
    model = build(p, failure_probability)
    backend = shared_backend("fig7", "matrix")
    outputs = backend.output_distributions(model.policy, model.ingress_packets)
    return outputs, backend.timings()


@pytest.mark.parametrize("p", NATIVE_SIZES)
@pytest.mark.parametrize("failure_probability", [None, 1 / 1000], ids=["f0", "f1000"])
def test_native_backend_scaling(benchmark, p, failure_probability):
    start = time.perf_counter()
    outputs = benchmark.pedantic(native_construct, args=(p, failure_probability), rounds=1, iterations=1)
    elapsed = time.perf_counter() - start
    switches = 5 * p * p // 4
    RESULTS.append(["native", p, switches, fail_label(failure_probability), f"{elapsed:.2f}s", "-", "-"])
    assert len(outputs) > 0


@pytest.mark.parametrize("p", NATIVE_SIZES)
@pytest.mark.parametrize("failure_probability", [None, 1 / 1000], ids=["f0", "f1000"])
def test_interpreted_vs_compiled_construction(benchmark, p, failure_probability):
    """One configuration of the headline comparison.

    Fresh interpreters on both sides (construction must include each
    path's full one-time work); distributions must agree within 1e-9.
    """

    def construct():
        model = build(p, failure_probability)
        t0 = time.perf_counter()
        interpreted = model.output_distributions(
            interpreter=Interpreter(compile_bodies=False)
        )
        interpreted_s = time.perf_counter() - t0

        model = build(p, failure_probability)
        t0 = time.perf_counter()
        compiled = model.output_distributions(interpreter=Interpreter())
        compiled_s = time.perf_counter() - t0
        return interpreted, compiled, interpreted_s, compiled_s

    interpreted, compiled, interpreted_s, compiled_s = benchmark.pedantic(
        construct, rounds=1, iterations=1
    )
    SPEEDUP_TOTALS["interpreted"] += interpreted_s
    SPEEDUP_TOTALS["compiled"] += compiled_s
    switches = 5 * p * p // 4
    ratio = interpreted_s / compiled_s if compiled_s else float("inf")
    RESULTS.append([
        "native/interp", p, switches, fail_label(failure_probability),
        f"{interpreted_s:.2f}s", f"{compiled_s:.2f}s", f"{ratio:.2f}x",
    ])
    for packet, dist in interpreted.items():
        fast = compiled[packet]
        for outcome in set(dist.support()) | set(fast.support()):
            assert float(fast(outcome)) == pytest.approx(float(dist(outcome)), abs=1e-9)


@pytest.mark.parametrize("p", MATRIX_SIZES)
@pytest.mark.parametrize("failure_probability", [None, 1 / 1000], ids=["f0", "f1000"])
def test_matrix_backend_scaling(benchmark, p, failure_probability):
    start = time.perf_counter()
    outputs, timings = benchmark.pedantic(
        matrix_construct, args=(p, failure_probability), rounds=1, iterations=1
    )
    elapsed = time.perf_counter() - start
    switches = 5 * p * p // 4
    compile_s = timings.get("compile", 0.0)
    # "query" is end-to-end query time; "build"/"solve" are sub-phases of it.
    query_s = timings.get("query", 0.0)
    RESULTS.append(
        [
            "matrix",
            p,
            switches,
            fail_label(failure_probability),
            f"{elapsed:.2f}s",
            f"{compile_s:.2f}s",
            f"{query_s:.2f}s",
        ]
    )
    assert len(outputs) > 0


@pytest.mark.parametrize("p", PRISM_SIZES)
@pytest.mark.parametrize("failure_probability", [None, 1 / 1000], ids=["f0", "f1000"])
def test_prism_backend_scaling(benchmark, p, failure_probability):
    start = time.perf_counter()
    probability = benchmark.pedantic(prism_construct, args=(p, failure_probability), rounds=1, iterations=1)
    elapsed = time.perf_counter() - start
    switches = 5 * p * p // 4
    RESULTS.append(["prism", p, switches, fail_label(failure_probability), f"{elapsed:.2f}s", "-", "-"])
    assert float(probability) > 0.99


def test_compiled_body_speedup(benchmark):
    """The tentpole claim: compiled-body construction is ≥3x faster.

    Summed over the whole fattree sweep (all sizes, with and without
    failures), model construction through the compiled-body fast path
    must be at least 3x faster than AST interpretation.  The measured
    ratio is recorded as the ``speedup`` metric of ``BENCH_fig7.json``
    and diffed against a committed baseline by CI.
    """
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    interpreted_s = SPEEDUP_TOTALS["interpreted"]
    compiled_s = SPEEDUP_TOTALS["compiled"]
    assert compiled_s > 0.0, "comparison sweep did not run"
    speedup = interpreted_s / compiled_s
    record(
        "fig7",
        "Figure 7 — model construction time (native vs matrix vs PRISM, with/without failures)",
        ["backend", "p", "switches", "pr(fail)", "time", "compile/interp-compiled", "query/speedup"],
        RESULTS,
        phases={
            "interpreted_construction_s": interpreted_s,
            "compiled_construction_s": compiled_s,
        },
        metrics={"speedup": speedup},
    )
    assert speedup >= 3.0, (
        f"compiled-body construction ({compiled_s:.2f}s) not ≥3x faster than "
        f"AST interpretation ({interpreted_s:.2f}s) over the fig7 sweep"
    )


def test_report_figure7(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    print_table(
        "Figure 7 — model construction time (native vs matrix vs PRISM, with/without failures)",
        ["backend", "p", "switches", "pr(fail)", "time", "compile/interp-compiled", "query/speedup"],
        RESULTS,
        fig="fig7",
    )
    assert RESULTS
