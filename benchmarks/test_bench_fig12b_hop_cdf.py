"""Figure 12(b) — fraction of traffic delivered within a hop budget.

With the per-link failure probability fixed at 1/4, reports the CDF of
hop counts for the three F10 schemes on the AB FatTree and for
``F10_3,5`` on a standard FatTree.  Expected shape: all schemes deliver
the same ~79% of traffic within 4 hops; the rerouting schemes deliver
substantially more within 6 hops on the AB FatTree, while the standard
FatTree needs 8 hops for the same recovery (its detours are longer).
"""

from __future__ import annotations

import time

import pytest

from repro.analysis import hop_count_cdf
from repro.backends import MatrixBackend
from repro.routing import f10_model
from repro.topology import ab_fat_tree, fat_tree

from bench_utils import print_table, record, shared_interpreter

FAILURE_PROBABILITY = 1 / 4
HOPS = [2, 4, 6, 8, 10, 12]
SERIES = [
    ("AB FatTree, F10_0", "ab", "f10_0"),
    ("AB FatTree, F10_3", "ab", "f10_3"),
    ("AB FatTree, F10_3,5", "ab", "f10_3_5"),
    ("FatTree, F10_3,5", "ft", "f10_3_5"),
]

RESULTS: dict[str, dict[int, float]] = {}


def build_model(topology, scheme):
    return f10_model(
        topology, 1, scheme=scheme, failure_probability=FAILURE_PROBABILITY,
        count_hops=True, max_hops=14,
    )


def compute_cdf(topology, scheme):
    # One interpreter across the whole figure: loop caches and compiled
    # bodies persist over the scheme sweep (disable with --cold).
    return hop_count_cdf(
        build_model(topology, scheme),
        max_hops=max(HOPS),
        interpreter=shared_interpreter("fig12b"),
    )


@pytest.mark.parametrize("label,topo_kind,scheme", SERIES, ids=[s[0] for s in SERIES])
def test_hop_count_cdf(benchmark, label, topo_kind, scheme):
    topology = ab_fat_tree(4) if topo_kind == "ab" else fat_tree(4)
    cdf = benchmark.pedantic(compute_cdf, args=(topology, scheme), rounds=1, iterations=1)
    RESULTS[label] = cdf
    values = [cdf[h] for h in sorted(cdf)]
    assert values == sorted(values)


def test_matrix_backend_batched_query(benchmark):
    """The tentpole claim: one factorization + batched RHS beats per-packet runs.

    The same all-ingress hop-CDF query is answered by per-packet AST
    interpretation (which re-walks the loop body for every reachable
    state), by the compiled-body native path, and by the matrix backend
    (compile once, factorize ``I - Q`` once, batched multi-RHS solve).
    The matrix query phase — everything after the one-time FDD
    compilation — must be at least 5x faster than per-packet
    interpretation, and all three distributions must agree within 1e-9.
    """
    from repro.core.interpreter import Interpreter

    model = build_model(ab_fat_tree(4), "f10_3_5")

    start = time.perf_counter()
    native_cdf = benchmark.pedantic(
        lambda: hop_count_cdf(
            model, max_hops=max(HOPS), interpreter=Interpreter(compile_bodies=False)
        ),
        rounds=1, iterations=1,
    )
    native_s = time.perf_counter() - start

    start = time.perf_counter()
    compiled_cdf = hop_count_cdf(
        model, max_hops=max(HOPS), interpreter=Interpreter()
    )
    compiled_s = time.perf_counter() - start

    # Two fresh backends, best-of-2, to keep the timing assert robust
    # against scheduler noise on small absolute times.
    cold_runs = []
    for _ in range(2):
        backend = MatrixBackend()
        start = time.perf_counter()
        matrix_cdf = hop_count_cdf(model, max_hops=max(HOPS), backend=backend)
        cold_runs.append((time.perf_counter() - start, backend))
    cold_s, backend = min(cold_runs, key=lambda run: run[0])
    compile_s = backend.timings().get("compile", 0.0)
    # "query" is the end-to-end query phase (its "assemble"/"factorize"/
    # "solve" sub-phases are nested inside it, so they must not be summed
    # on top).
    query_s = min(
        candidate.timings().get("query", 0.0) for _, candidate in cold_runs
    )

    start = time.perf_counter()
    warm_cdf = hop_count_cdf(model, max_hops=max(HOPS), backend=backend)
    warm_s = time.perf_counter() - start
    speedup = native_s / query_s if query_s else float("inf")
    loop_states = sum(
        len(stage.row_cache) for stage in backend.plan(model.policy).loop_stages
    )
    record(
        "fig12b",
        "Figure 12(b) — matrix backend batched all-ingress hop-CDF query",
        ["metric", "value"],
        [
            ["ingresses", len(model.ingress_packets)],
            ["loop_states", loop_states],
            ["interpreted_query_s", round(native_s, 4)],
            ["compiled_native_query_s", round(compiled_s, 4)],
            ["matrix_compile_s", round(compile_s, 4)],
            ["matrix_query_s", round(query_s, 4)],
            ["matrix_assemble_s", round(backend.timings().get("assemble", 0.0), 4)],
            ["matrix_factorize_s", round(backend.timings().get("factorize", 0.0), 4)],
            ["matrix_solve_s", round(backend.timings().get("solve", 0.0), 4)],
            ["matrix_cold_total_s", round(cold_s, 4)],
            ["matrix_warm_query_s", round(warm_s, 4)],
            ["query_speedup", round(speedup, 2)],
        ],
        phases={
            "interpreted_query_s": native_s,
            "compiled_native_query_s": compiled_s,
            "matrix_compile_s": compile_s,
            "matrix_query_s": query_s,
            "matrix_warm_query_s": warm_s,
        },
    )
    for h in range(0, max(HOPS) + 1):
        assert compiled_cdf[h] == pytest.approx(native_cdf[h], abs=1e-9)
        assert matrix_cdf[h] == pytest.approx(native_cdf[h], abs=1e-9)
        assert warm_cdf[h] == pytest.approx(native_cdf[h], abs=1e-9)
    assert speedup >= 5.0, (
        f"batched matrix query ({query_s:.3f}s) not ≥5x faster than "
        f"per-packet interpretation ({native_s:.3f}s)"
    )


def test_report_figure12b(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    rows = [
        [label] + [f"{cdf[h]:.3f}" for h in HOPS] for label, cdf in RESULTS.items()
    ]
    print_table(
        "Figure 12(b) — P[delivered within ≤ h hops] at pr = 1/4",
        ["scheme"] + [f"h={h}" for h in HOPS],
        rows,
        fig="fig12b_cdf",
    )
    ab = RESULTS["AB FatTree, F10_3,5"]
    ft = RESULTS["FatTree, F10_3,5"]
    base = RESULTS["AB FatTree, F10_0"]
    assert ab[4] == pytest.approx(base[4], abs=1e-9)
    assert ab[6] > base[4]          # 3-hop detours recover traffic at 6 hops
    assert ft[6] == pytest.approx(ft[4], abs=1e-9)  # FatTree needs 8 hops instead
    assert ft[8] > ft[6]
