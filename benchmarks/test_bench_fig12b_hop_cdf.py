"""Figure 12(b) — fraction of traffic delivered within a hop budget.

With the per-link failure probability fixed at 1/4, reports the CDF of
hop counts for the three F10 schemes on the AB FatTree and for
``F10_3,5`` on a standard FatTree.  Expected shape: all schemes deliver
the same ~79% of traffic within 4 hops; the rerouting schemes deliver
substantially more within 6 hops on the AB FatTree, while the standard
FatTree needs 8 hops for the same recovery (its detours are longer).
"""

from __future__ import annotations

import pytest

from repro.analysis import hop_count_cdf
from repro.routing import f10_model
from repro.topology import ab_fat_tree, fat_tree

from bench_utils import print_table

FAILURE_PROBABILITY = 1 / 4
HOPS = [2, 4, 6, 8, 10, 12]
SERIES = [
    ("AB FatTree, F10_0", "ab", "f10_0"),
    ("AB FatTree, F10_3", "ab", "f10_3"),
    ("AB FatTree, F10_3,5", "ab", "f10_3_5"),
    ("FatTree, F10_3,5", "ft", "f10_3_5"),
]

RESULTS: dict[str, dict[int, float]] = {}


def compute_cdf(topology, scheme):
    model = f10_model(
        topology, 1, scheme=scheme, failure_probability=FAILURE_PROBABILITY,
        count_hops=True, max_hops=14,
    )
    return hop_count_cdf(model, max_hops=max(HOPS))


@pytest.mark.parametrize("label,topo_kind,scheme", SERIES, ids=[s[0] for s in SERIES])
def test_hop_count_cdf(benchmark, label, topo_kind, scheme):
    topology = ab_fat_tree(4) if topo_kind == "ab" else fat_tree(4)
    cdf = benchmark.pedantic(compute_cdf, args=(topology, scheme), rounds=1, iterations=1)
    RESULTS[label] = cdf
    values = [cdf[h] for h in sorted(cdf)]
    assert values == sorted(values)


def test_report_figure12b(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    rows = [
        [label] + [f"{cdf[h]:.3f}" for h in HOPS] for label, cdf in RESULTS.items()
    ]
    print_table(
        "Figure 12(b) — P[delivered within ≤ h hops] at pr = 1/4",
        ["scheme"] + [f"h={h}" for h in HOPS],
        rows,
    )
    ab = RESULTS["AB FatTree, F10_3,5"]
    ft = RESULTS["FatTree, F10_3,5"]
    base = RESULTS["AB FatTree, F10_0"]
    assert ab[4] == pytest.approx(base[4], abs=1e-9)
    assert ab[6] > base[4]          # 3-hop detours recover traffic at 6 hops
    assert ft[6] == pytest.approx(ft[4], abs=1e-9)  # FatTree needs 8 hops instead
    assert ft[8] > ft[6]
